"""The portable JSONL trace format (version 1).

A *trace* is the recorded interaction between an application and its
database: one header line followed by one line per database event, in the
order the events were observed.  It is the on-disk bridge between the model
checker (which produces histories) and the live-traffic workload the
ROADMAP targets (which produces logs): anything that can emit these lines
can have its executions checked against RC/RA/CC/SI/SER, offline via
:meth:`Trace.to_history` or as events stream in via
:class:`repro.checking.online.OnlineChecker`.

The schema is documented field-by-field in ``docs/trace_format.md``; the
short version:

* line 1 — header: ``{"type": "header", "format": "repro-trace",
  "version": 1, "name": ..., "variables": [...], "initial": {...}}``;
* every other line — event: ``{"type": "begin"|"read"|"write"|"commit"|
  "abort", "session": str, "txn": int, ...}`` with ``var``/``value`` for
  reads and writes, ``from: [session, txn]`` naming the write-read source
  of an external read, and ``local: true`` for reads answered by the
  transaction's own earlier write.

Event *positions* are implicit (arrival order within the transaction), and
the distinguished ``init`` transaction is implicit too — the header's
``initial`` map reconstructs it — so a trace stays writable by hand and by
non-Python recorders.

Versioning rules: readers accept any file whose major ``version`` they
know, ignore unknown *optional* keys (forward-compatible additions), and
reject files with a newer version or missing required keys.  Any change
that alters the meaning of an existing key bumps ``version``.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.events import INIT_TXN, Event, EventId, EventType, TxnId
from ..core.history import History, TransactionLog
from ..core.ordered_history import OrderedHistory
from ..core.serde import from_jsonable, to_jsonable

#: Current (and only) major version of the trace format.
TRACE_VERSION = 1

#: The ``format`` tag every header must carry.
TRACE_FORMAT = "repro-trace"

_EVENT_TYPES = {t.value for t in EventType}


class TraceFormatError(ValueError):
    """A trace file/line violates the schema or the event-order rules."""


class EvictedTransactionError(TraceFormatError):
    """An event references a transaction the replayer was told to forget.

    Raised instead of the generic "unknown transaction" error when the
    transaction demonstrably *existed* (its session's begin counter has
    passed its index) but has been evicted via :meth:`TraceReplayer.forget`.
    The streaming monitor surfaces this as a stale read under the
    ``assume-fresh`` retention mode; in ``keep`` mode it cannot occur.
    """


@dataclass(frozen=True)
class TraceEvent:
    """One recorded database event.

    ``session``/``txn`` identify the transaction (``txn`` is the 0-based
    position of the transaction within its session); ``op`` is one of the
    five paper event types.  ``var``/``value`` are set for reads and
    writes; ``source`` names the ``(session, txn)`` a non-local read reads
    from (``None`` exactly when ``local`` is true).
    """

    op: str
    session: str
    txn: int
    var: Optional[str] = None
    value: Hashable = None
    source: Optional[Tuple[str, int]] = None
    local: bool = False

    @property
    def tid(self) -> TxnId:
        """The transaction id this event belongs to."""
        return TxnId(self.session, self.txn)

    @property
    def source_tid(self) -> Optional[TxnId]:
        """The wr source as a :class:`TxnId` (``None`` for non-reads/local)."""
        if self.source is None:
            return None
        return TxnId(self.source[0], self.source[1])

    def to_json_obj(self) -> Dict:
        """The event as a JSON-serializable dict (one trace line)."""
        obj: Dict = {"type": self.op, "session": self.session, "txn": self.txn}
        if self.op in ("read", "write"):
            obj["var"] = self.var
            obj["value"] = to_jsonable(self.value)
        if self.op == "read":
            if self.local:
                obj["local"] = True
            else:
                obj["from"] = list(self.source) if self.source else None
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "TraceEvent":
        """Parse one event line (already JSON-decoded)."""
        op = obj.get("type")
        if op not in _EVENT_TYPES:
            raise TraceFormatError(f"unknown event type {op!r}")
        session = obj.get("session")
        txn = obj.get("txn")
        if not isinstance(session, str) or not isinstance(txn, int) or isinstance(txn, bool):
            raise TraceFormatError(f"event needs a string 'session' and int 'txn': {obj!r}")
        var = value = None
        source: Optional[Tuple[str, int]] = None
        local = False
        if op in ("read", "write"):
            var = obj.get("var")
            if not isinstance(var, str):
                raise TraceFormatError(f"{op} event needs a string 'var': {obj!r}")
            try:
                value = from_jsonable(obj.get("value"))
            except ValueError as err:
                raise TraceFormatError(f"bad 'value' encoding: {err}") from None
        if op == "read":
            local = bool(obj.get("local", False))
            raw = obj.get("from")
            if local:
                if raw is not None:
                    raise TraceFormatError(f"local read cannot carry 'from': {obj!r}")
            else:
                if not (
                    isinstance(raw, (list, tuple))
                    and len(raw) == 2
                    and isinstance(raw[0], str)
                    and isinstance(raw[1], int)
                    and not isinstance(raw[1], bool)
                ):
                    raise TraceFormatError(f"external read needs 'from': [session, txn]: {obj!r}")
                source = (raw[0], raw[1])
        return cls(op, session, txn, var, value, source, local)


@dataclass
class TraceHeader:
    """The metadata line every trace starts with.

    ``variables`` is the global-variable universe and ``initial`` their
    initial values — together they stand in for the distinguished ``init``
    transaction of Def. 2.1, which is therefore never spelled out as
    events.  ``meta`` is a free-form dict for recorder-specific context
    (program name, isolation level explored, seed, …); readers must
    tolerate and preserve keys they do not understand.
    """

    variables: Tuple[str, ...]
    initial: Dict[str, Hashable] = field(default_factory=dict)
    name: str = "trace"
    version: int = TRACE_VERSION
    meta: Dict = field(default_factory=dict)

    def to_json_obj(self) -> Dict:
        return {
            "type": "header",
            "format": TRACE_FORMAT,
            "version": self.version,
            "name": self.name,
            "variables": list(self.variables),
            "initial": {var: to_jsonable(value) for var, value in sorted(self.initial.items())},
            "meta": self.meta,
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "TraceHeader":
        if obj.get("type") != "header" or obj.get("format") != TRACE_FORMAT:
            raise TraceFormatError(
                f"first trace line must be a {TRACE_FORMAT!r} header, got {obj!r}"
            )
        version = obj.get("version")
        if not isinstance(version, int) or version < 1:
            raise TraceFormatError(f"header needs an int version >= 1, got {version!r}")
        if version > TRACE_VERSION:
            raise TraceFormatError(
                f"trace version {version} is newer than supported {TRACE_VERSION}"
            )
        variables = obj.get("variables")
        if not isinstance(variables, list) or not all(isinstance(v, str) for v in variables):
            raise TraceFormatError("header 'variables' must be a list of strings")
        initial_raw = obj.get("initial", {})
        if not isinstance(initial_raw, dict):
            raise TraceFormatError("header 'initial' must be an object")
        try:
            initial = {var: from_jsonable(value) for var, value in initial_raw.items()}
        except ValueError as err:
            raise TraceFormatError(f"bad 'initial' value encoding: {err}") from None
        unknown = set(initial) - set(variables)
        if unknown:
            raise TraceFormatError(f"initial values for undeclared variables: {sorted(unknown)}")
        meta = obj.get("meta", {})
        if not isinstance(meta, dict):
            raise TraceFormatError("header 'meta' must be an object")
        return cls(
            variables=tuple(variables),
            initial=initial,
            name=str(obj.get("name", "trace")),
            version=version,
            meta=dict(meta),
        )

    def initial_history(self) -> History:
        """The history containing only the implied ``init`` transaction."""
        return History.initial(self.variables, 0, overrides=self.initial)


class Trace:
    """A header plus an ordered tuple of events — one recorded execution."""

    __slots__ = ("header", "events")

    def __init__(self, header: TraceHeader, events: Iterable[TraceEvent]):
        self.header = header
        self.events: Tuple[TraceEvent, ...] = tuple(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.header.to_json_obj() == other.header.to_json_obj() and self.events == other.events

    def prefix(self, length: int) -> "Trace":
        """The trace containing only the first ``length`` events."""
        return Trace(self.header, self.events[:length])

    # -- serialization --------------------------------------------------------

    def dumps(self) -> str:
        """Serialize to JSONL text (header line + one line per event)."""
        lines = [json.dumps(self.header.to_json_obj(), sort_keys=True)]
        lines.extend(json.dumps(event.to_json_obj(), sort_keys=True) for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse JSONL text produced by :meth:`dumps` (or any recorder)."""
        header: Optional[TraceHeader] = None
        events: List[TraceEvent] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise TraceFormatError(f"line {lineno}: invalid JSON: {err}") from None
            if not isinstance(obj, dict):
                raise TraceFormatError(f"line {lineno}: expected a JSON object")
            if header is None:
                header = TraceHeader.from_json_obj(obj)
                continue
            try:
                events.append(TraceEvent.from_json_obj(obj))
            except TraceFormatError as err:
                raise TraceFormatError(f"line {lineno}: {err}") from None
        if header is None:
            raise TraceFormatError("empty trace: no header line")
        return cls(header, events)

    def dump(self, path_or_file: Union[str, io.TextIOBase]) -> None:
        """Write the JSONL encoding to a path or an open text file."""
        text = self.dumps()
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            path_or_file.write(text)

    @classmethod
    def load(cls, path_or_file: Union[str, io.TextIOBase]) -> "Trace":
        """Read a trace from a path or an open text file."""
        if isinstance(path_or_file, str):
            with open(path_or_file, encoding="utf-8") as handle:
                return cls.loads(handle.read())
        return cls.loads(path_or_file.read())

    # -- recording from histories ---------------------------------------------

    @classmethod
    def from_history(
        cls,
        history_or_ordered: Union[History, OrderedHistory],
        name: str = "trace",
        meta: Optional[Dict] = None,
    ) -> "Trace":
        """Record a trace from a checker-produced history.

        Given an :class:`~repro.core.ordered_history.OrderedHistory` the
        recorded event order is its execution order ``<``.  Given a bare
        :class:`~repro.core.history.History` — which carries no total
        order — transactions are emitted contiguously in a deterministic
        topological order of ``so ∪ wr`` (ancestor-count, ties by id), so
        every read appears after its wr source completes and replaying the
        file one event at a time always goes through well-formed prefixes.
        """
        if isinstance(history_or_ordered, OrderedHistory):
            history = history_or_ordered.history
            order: Sequence[EventId] = [
                eid for eid in history_or_ordered.order if eid.txn != INIT_TXN
            ]
        else:
            history = history_or_ordered
            matrix = history.causal_matrix()
            if not matrix.is_acyclic():
                raise ValueError("cannot serialize a history with cyclic so ∪ wr")
            txns = sorted(
                (tid for tid in history.txns if tid != INIT_TXN),
                key=lambda tid: (bin(matrix.ancestors_mask(tid)).count("1"), tid),
            )
            order = [e.eid for tid in txns for e in history.txns[tid].events]
        header = TraceHeader(
            variables=tuple(sorted(history.txns[INIT_TXN].writes())),
            initial={var: ev.value for var, ev in history.txns[INIT_TXN].writes().items()},
            name=name,
            meta=dict(meta or {}),
        )
        events: List[TraceEvent] = []
        for eid in order:
            event = history.event(eid)
            source: Optional[Tuple[str, int]] = None
            if event.is_external_read:
                writer = history.wr.get(eid)
                if writer is None:
                    raise ValueError(f"external read {eid!r} has no wr source")
                source = (writer.session, writer.index)
            events.append(
                TraceEvent(
                    op=event.type.value,
                    session=eid.txn.session,
                    txn=eid.txn.index,
                    var=event.var,
                    value=event.value,
                    source=source,
                    local=event.local,
                )
            )
        return cls(header, events)

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping],
        variables: Optional[Iterable[str]] = None,
        initial: Optional[Mapping[str, Hashable]] = None,
        name: str = "trace",
        meta: Optional[Dict] = None,
    ) -> "Trace":
        """Adapt plain dict/log input (e.g. parsed server logs) to a trace.

        Each record needs ``type``/``session``/``txn`` and the per-type
        fields of the schema; this is exactly
        :meth:`TraceEvent.from_json_obj`, so values must already be in the
        JSON encoding.  When ``variables`` is omitted it is inferred from
        the variables the records mention plus the keys of ``initial`` (so
        a round-trip through :meth:`dumps`/:meth:`loads` never rejects its
        own header).  An empty or commit-only log is a valid input: the
        result is a trace over the declared variables whose replay is the
        initial state plus whatever empty transactions the log mentions.
        """
        events = [TraceEvent.from_json_obj(record) for record in records]
        if variables is None:
            mentioned = {e.var for e in events if e.var is not None}
            variables = sorted(mentioned | set(initial or {}))
        header = TraceHeader(
            variables=tuple(variables),
            initial=dict(initial or {}),
            name=name,
            meta=dict(meta or {}),
        )
        return cls(header, events)

    # -- replaying into a history ----------------------------------------------

    def to_history(self, strict: bool = True) -> History:
        """Replay the events into a :class:`~repro.core.history.History`.

        Validates the event-order rules as it goes (see
        :class:`TraceReplayer`); with ``strict`` the result must also pass
        ``History.validate`` (acyclic ``so ∪ wr``, well-placed begins and
        commits, wr sources that visibly write their variable).
        """
        replayer = TraceReplayer(self.header)
        for index, event in enumerate(self.events):
            try:
                replayer.apply(event)
            except TraceFormatError as err:
                raise TraceFormatError(f"event #{index}: {err}") from None
        history = replayer.history()
        if strict:
            try:
                history.validate()
            except AssertionError as err:
                raise TraceFormatError(f"replayed history is malformed: {err}") from None
        return history


class TraceReplayer:
    """Incremental trace → history state machine.

    Both :meth:`Trace.to_history` and the online checker need the same
    bookkeeping — which transactions exist, which are pending, which events
    each log holds, what the wr relation is — applied one event at a time
    with the same validation.  This class is that shared state machine;
    :class:`~repro.checking.online.OnlineChecker` composes it with the
    incremental consistency machinery.

    Order rules enforced per event:

    * ``begin`` opens transaction ``k`` of a session only when ``k`` is the
      next index and transaction ``k-1`` (if any) is complete — sessions
      are sequential clients;
    * ``read``/``write``/``commit``/``abort`` extend the session's last,
      still-pending transaction;
    * an external read's source must already have written the variable
      (reads follow their source, footnote 7 of the paper), and a local
      read needs an earlier own write.
    """

    def __init__(self, header: TraceHeader):
        self.header = header
        init = header.initial_history()
        self._logs: Dict[TxnId, List[Event]] = {INIT_TXN: list(init.txns[INIT_TXN].events)}
        self._txn_order: List[TxnId] = [INIT_TXN]
        self._sessions: Dict[str, List[TxnId]] = {}
        self._wr: Dict[EventId, TxnId] = {}
        self._complete: Dict[TxnId, str] = {INIT_TXN: "commit"}
        #: var → last WRITE event per transaction that wrote it (insertion order).
        self._writes: Dict[TxnId, Dict[str, Event]] = {
            INIT_TXN: dict(init.txns[INIT_TXN].writes())
        }
        self._count = 0
        # Per-session summaries that survive forget(): how many transactions
        # the session has begun (= the next valid begin index) and which
        # transaction, if any, is still pending.  O(sessions), not O(events).
        self._session_begun: Dict[str, int] = {}
        self._session_open: Dict[str, Optional[TxnId]] = {}
        self._forgotten = 0

    # -- queries ---------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Number of events applied so far."""
        return self._count

    def transactions(self) -> Tuple[TxnId, ...]:
        """All transactions in creation order (``init`` first)."""
        return tuple(self._txn_order)

    def session_order(self, session: str) -> Tuple[TxnId, ...]:
        """The transactions begun by ``session``, in session order."""
        return tuple(self._sessions.get(session, ()))

    def wr_source(self, eid: EventId) -> Optional[TxnId]:
        """The wr source of the given read event, if recorded."""
        return self._wr.get(eid)

    def events_of(self, tid: TxnId) -> List[Event]:
        """The live event log of ``tid`` (do not mutate)."""
        return self._logs[tid]

    @property
    def wr_map(self) -> Dict[EventId, TxnId]:
        """read event id → wr source, over live reads (do not mutate)."""
        return self._wr

    def wr_sources(self) -> Set[TxnId]:
        """Every transaction currently named as a wr source by a live read."""
        return set(self._wr.values())

    def wrote_any(self, tid: TxnId) -> bool:
        """Whether ``tid`` has recorded at least one write (aborted or not)."""
        return bool(self._writes.get(tid))

    def is_complete(self, tid: TxnId) -> bool:
        return tid in self._complete

    def is_aborted(self, tid: TxnId) -> bool:
        return self._complete.get(tid) == "abort"

    def is_live(self, tid: TxnId) -> bool:
        """Whether ``tid`` is currently materialised (not forgotten)."""
        return tid in self._logs

    def was_forgotten(self, tid: TxnId) -> bool:
        """Whether ``tid`` existed at some point but was evicted.

        Decidable in O(1) from the per-session begin counter: the
        transaction existed iff its index is below the session's next begin
        index, and it is forgotten iff it no longer has a log.
        """
        return tid not in self._logs and tid.index < self._session_begun.get(tid.session, 0)

    @property
    def forgotten_count(self) -> int:
        """Total transactions evicted via :meth:`forget` so far."""
        return self._forgotten

    @property
    def live_count(self) -> int:
        """Number of currently materialised transactions (incl. ``init``)."""
        return len(self._logs)

    def visible_writes(self, tid: TxnId) -> Dict[str, Event]:
        """``writes(t)`` so far: var → last write; empty once aborted."""
        if self.is_aborted(tid):
            return {}
        return self._writes.get(tid, {})

    def history(self) -> History:
        """Materialise the current prefix as a (persistent) history."""
        txns = {
            tid: TransactionLog(tid, tuple(events)) for tid, events in self._logs.items()
        }
        sessions = {session: tuple(order) for session, order in self._sessions.items()}
        return History(sessions, txns, dict(self._wr))

    # -- eviction (streaming-monitor GC) ---------------------------------------

    def forget(self, tids: Iterable[TxnId]) -> None:
        """Drop the state of the given *complete* transactions.

        The per-session summaries keep begin-validation exact afterwards
        (the next index and pending-predecessor checks never consult the
        dropped logs), and :meth:`was_forgotten` stays decidable.  wr
        entries with a forgotten endpoint are dropped too — the caller
        (:class:`~repro.checking.online.OnlineChecker`) is responsible for
        having baked any still-relevant reachability into its maintained
        closure before forgetting.  Forgetting ``init``, a pending
        transaction, or an unknown one raises ``ValueError``.
        """
        drop = set(tids)
        if not drop:
            return
        if INIT_TXN in drop:
            raise ValueError("cannot forget the init transaction")
        for tid in drop:
            if tid not in self._logs:
                raise ValueError(f"cannot forget unknown transaction {tid!r}")
            if tid not in self._complete:
                raise ValueError(f"cannot forget pending transaction {tid!r}")
        for tid in drop:
            del self._logs[tid]
            self._writes.pop(tid, None)
            self._complete.pop(tid, None)
        self._txn_order = [t for t in self._txn_order if t not in drop]
        for session in {t.session for t in drop}:
            kept = [t for t in self._sessions.get(session, []) if t not in drop]
            if kept:
                self._sessions[session] = kept
            else:
                self._sessions.pop(session, None)
        if self._wr:
            self._wr = {
                eid: src
                for eid, src in self._wr.items()
                if eid.txn not in drop and src not in drop
            }
        self._forgotten += len(drop)

    # -- applying events ----------------------------------------------------------

    def apply(self, event: TraceEvent) -> Event:
        """Validate and apply one trace event; returns the core event added."""
        handler = getattr(self, f"_apply_{event.op}", None)
        if handler is None:
            raise TraceFormatError(f"unknown event type {event.op!r}")
        added = handler(event)
        self._count += 1
        return added

    def _open_log(self, event: TraceEvent) -> Tuple[TxnId, List[Event]]:
        tid = event.tid
        log = self._logs.get(tid)
        if log is None:
            if self.was_forgotten(tid):
                raise EvictedTransactionError(f"event for evicted transaction {tid!r}")
            raise TraceFormatError(f"event for unknown transaction {tid!r} (missing begin)")
        if tid in self._complete:
            raise TraceFormatError(f"event for already-complete transaction {tid!r}")
        return tid, log

    def _apply_begin(self, event: TraceEvent) -> Event:
        tid = event.tid
        if tid.session == INIT_TXN.session:
            raise TraceFormatError(f"session name {tid.session!r} is reserved")
        begun = self._session_begun.get(tid.session, 0)
        if event.txn != begun:
            raise TraceFormatError(
                f"begin of {tid!r} out of order: next index in session is {begun}"
            )
        open_tid = self._session_open.get(tid.session)
        if open_tid is not None:
            raise TraceFormatError(
                f"begin of {tid!r} while {open_tid!r} is still pending"
            )
        self._sessions.setdefault(tid.session, []).append(tid)
        self._session_begun[tid.session] = begun + 1
        self._session_open[tid.session] = tid
        added = Event(EventId(tid, 0), EventType.BEGIN)
        self._logs[tid] = [added]
        self._txn_order.append(tid)
        self._writes[tid] = {}
        return added

    def _apply_read(self, event: TraceEvent) -> Event:
        tid, log = self._open_log(event)
        eid = EventId(tid, len(log))
        if event.local:
            if event.var not in self._writes[tid]:
                raise TraceFormatError(
                    f"local read of {event.var!r} in {tid!r} has no earlier own write"
                )
            added = Event(eid, EventType.READ, event.var, event.value, local=True)
        else:
            source = event.source_tid
            if source is None:
                raise TraceFormatError(f"external read in {tid!r} has no source")
            if source != INIT_TXN and source not in self._logs:
                if self.was_forgotten(source):
                    raise EvictedTransactionError(
                        f"read in {tid!r} from evicted transaction {source!r}"
                    )
                raise TraceFormatError(f"read in {tid!r} from unknown transaction {source!r}")
            if event.var not in self.visible_writes(source):
                raise TraceFormatError(
                    f"read of {event.var!r} in {tid!r} from {source!r}, "
                    f"which has not (visibly) written it"
                )
            added = Event(eid, EventType.READ, event.var, event.value)
            self._wr[eid] = source
        log.append(added)
        return added

    def _apply_write(self, event: TraceEvent) -> Event:
        tid, log = self._open_log(event)
        if event.var not in self.header.variables:
            raise TraceFormatError(f"write to undeclared variable {event.var!r}")
        added = Event(EventId(tid, len(log)), EventType.WRITE, event.var, event.value)
        log.append(added)
        self._writes[tid][event.var] = added
        return added

    def _apply_commit(self, event: TraceEvent) -> Event:
        tid, log = self._open_log(event)
        added = Event(EventId(tid, len(log)), EventType.COMMIT)
        log.append(added)
        self._complete[tid] = "commit"
        self._session_open[tid.session] = None
        return added

    def _apply_abort(self, event: TraceEvent) -> Event:
        tid, log = self._open_log(event)
        added = Event(EventId(tid, len(log)), EventType.ABORT)
        log.append(added)
        self._complete[tid] = "abort"
        self._session_open[tid.session] = None
        return added
