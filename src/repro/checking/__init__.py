"""Model-checking facade: checker, assertions, results."""

from .assertions import Assertion, assertion, local_equals, local_in, serializable_outcome
from .checker import ModelChecker, check_program
from .result import CheckResult, Outcome, Violation

__all__ = [
    "Assertion",
    "assertion",
    "local_equals",
    "local_in",
    "serializable_outcome",
    "ModelChecker",
    "check_program",
    "CheckResult",
    "Outcome",
    "Violation",
]

from .report import LevelComparison, compare_levels

__all__ += ["LevelComparison", "compare_levels"]

from .online import OnlineChecker, OnlineStep, check_trace

__all__ += ["OnlineChecker", "OnlineStep", "check_trace"]
