"""The model-checking facade — the library's primary public entry point.

::

    from repro import ModelChecker
    result = ModelChecker(program, isolation="CC").run(assertions=[...])
    assert result.ok

The checker picks the right algorithm for the requested isolation level:

* prefix-closed causally-extensible levels (RC / RA / CC / true, the
  session guarantees RYW/MR/MW/WFR/SESSION) → the strongly optimal
  ``explore-ce`` (§5);
* search levels (SI / SER / PSI / PC / BS-3) → ``explore-ce*(base,
  level)`` (§6), exploring under the strongest registered prefix-closed
  causally-extensible level weaker than the target — CC for SI/SER/PSI/PC
  (per the paper's observation that CC+SI / CC+SER overhead is
  negligible), RC for BS-3;
* ``method="dfs"`` forces the no-POR baseline (for comparison only).

Any name registered in the isolation registry is accepted (``repro
levels`` lists them).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..dpor.explore import SwappingExplorer
from ..dpor.parallel import ParallelExplorer, resolve_workers
from ..isolation.base import IsolationLevel, get_level, registered_levels
from ..lang.program import Program
from ..semantics.enumerate import enumerate_histories
from .assertions import Assertion
from .result import CheckResult, Outcome, Violation

LevelLike = Union[str, IsolationLevel]


def _default_base(level: IsolationLevel) -> IsolationLevel:
    """The strongest sound exploration base for ``explore-ce*(base, level)``.

    The base must be prefix-closed, causally extensible, and weaker than
    the target so no valid history is pruned.  Picking the strongest such
    registered level keeps the exploration tight: CC for SI/SER/PSI/PC
    (the paper's default — CC+SI / CC+SER overhead is negligible, §6), but
    RC for BS-3, which is *not* stronger than CC, so exploring it under a
    CC base would be unsound.  TRUE always qualifies as the fallback.
    """
    candidates = [
        other
        for other in registered_levels()
        if other.name != level.name
        and other.prefix_closed
        and other.causally_extensible
        and other.is_weaker_than(level)
    ]
    return max(candidates, key=lambda other: other.strength)


def _normalize_keep_outcomes(keep_outcomes: Union[bool, int]) -> Tuple[bool, Optional[int]]:
    """``keep_outcomes`` → ``(collect, cap)``.

    ``True`` keeps every outcome (no cap), ``False`` keeps none
    (``result.outcomes is None``), and an integer ``n >= 0`` keeps at most
    ``n`` — ``0`` meaning "collect but keep none" (``result.outcomes ==
    []``, distinguishable from not collecting at all).  Negative caps are
    rejected.  Booleans are checked identity-first because ``bool`` is an
    ``int`` subtype, which previously conflated ``0`` with ``False`` and
    cap handling with ``True``.
    """
    if keep_outcomes is True:
        return True, None
    if keep_outcomes is False:
        return False, None
    cap = int(keep_outcomes)
    if cap < 0:
        raise ValueError(f"keep_outcomes must be a bool or a cap >= 0, got {cap}")
    return True, cap


class ModelChecker:
    """Configured checker for one program and isolation level.

    Parameters
    ----------
    program:
        The bounded transactional program to check.
    isolation:
        The isolation level the database provides: any registered name
        (``"RC"``, ``"RA"``, ``"CC"``, ``"SI"``, ``"SER"``, ``"TRUE"``,
        ``"PSI"``, ``"PC"``, ``"SESSION"``, ``"BS-3"``, ...).
    base:
        For search levels: the weaker exploration level of
        ``explore-ce*`` (default: strongest registered causally-extensible
        level weaker than the target — CC for SI/SER/PSI/PC, RC for BS-3).
    method:
        ``"dpor"`` (default) or ``"dfs"`` for the baseline.
    workers:
        Process count for the exploration: ``1`` (default) runs in-process,
        ``0`` means one worker per CPU, and any N > 1 spreads the DPOR
        exploration over a persistent pool of N worker processes with
        identical results (``method="dfs"`` always runs in-process).
        Where no pool can start — no multiprocessing start method can
        ship this program's engine — :meth:`run` raises
        :class:`~repro.dpor.pool.PoolUnavailableError` immediately rather
        than hanging or silently falling back to serial; callers wanting
        the serial behaviour pass ``workers=1`` explicitly.
    """

    def __init__(
        self,
        program: Program,
        isolation: LevelLike = "SER",
        base: Optional[LevelLike] = None,
        method: str = "dpor",
        workers: int = 1,
    ):
        self.program = program
        self.level = get_level(isolation) if isinstance(isolation, str) else isolation
        if base is not None:
            self.base: Optional[IsolationLevel] = (
                get_level(base) if isinstance(base, str) else base
            )
        elif self.level.prefix_closed and self.level.causally_extensible:
            self.base = None
        else:
            self.base = _default_base(self.level)
        if method not in ("dpor", "dfs"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.workers = resolve_workers(workers)

    # -- running ------------------------------------------------------------------

    def run(
        self,
        assertions: Iterable[Assertion] = (),
        timeout: Optional[float] = None,
        keep_outcomes: Union[bool, int] = False,
        max_violations: Optional[int] = 10,
    ) -> CheckResult:
        """Enumerate all histories and evaluate the assertions.

        ``keep_outcomes`` retains outcome objects for inspection: ``True``
        for all, ``False`` for none, or an integer cap (``0`` keeps none
        but still yields an empty list; negative caps are rejected).
        ``max_violations`` stops collecting witnesses (not exploring)
        beyond the given count.
        """
        checks: List[Assertion] = list(assertions)
        violations: List[Violation] = []
        collect_outcomes, outcome_cap = _normalize_keep_outcomes(keep_outcomes)
        outcomes: Optional[List[Outcome]] = [] if collect_outcomes else None
        count = 0

        def on_history(history) -> None:
            nonlocal count
            count += 1
            needed = checks or outcomes is not None
            if not needed:
                return
            outcome = Outcome(self.program, history)
            if outcomes is not None and (outcome_cap is None or len(outcomes) < outcome_cap):
                outcomes.append(outcome)
            for check in checks:
                if max_violations is not None and len(violations) >= max_violations:
                    return
                if not check.holds(outcome):
                    violations.append(Violation(check.name, outcome))

        if self.method == "dfs":
            result = enumerate_histories(self.program, self.level, timeout=timeout, on_output=on_history)
            # DFS revisits histories; count each class once for reporting.
            stats_holder = _dfs_stats(result)
            return CheckResult(
                program_name=self.program.name,
                algorithm=f"DFS({self.level.name})",
                isolation=self.level.name,
                history_count=len(result.histories),
                stats=stats_holder,
                violations=violations,
                outcomes=outcomes,
            )

        explorer_cls = SwappingExplorer if self.workers == 1 else ParallelExplorer
        explorer_kwargs = {} if self.workers == 1 else {"workers": self.workers}
        explorer = explorer_cls(
            self.program,
            self.base or self.level,
            valid_level=self.level if self.base is not None else None,
            on_output=on_history,
            collect_histories=False,
            timeout=timeout,
            **explorer_kwargs,
        )
        run = explorer.run()
        return CheckResult(
            program_name=self.program.name,
            algorithm=run.algorithm,
            isolation=self.level.name,
            history_count=run.stats.outputs,
            stats=run.stats,
            violations=violations,
            outcomes=outcomes,
        )


def _dfs_stats(result):
    from ..dpor.stats import ExplorationStats

    return ExplorationStats(
        explore_calls=result.steps,
        end_states=result.end_states,
        outputs=result.histories.total_added,
        blocked=result.blocked,
        seconds=result.seconds,
        timed_out=result.timed_out,
    )


def check_program(
    program: Program,
    isolation: LevelLike,
    assertions: Sequence[Assertion] = (),
    workers: int = 1,
    **kwargs,
) -> CheckResult:
    """One-shot convenience wrapper around :class:`ModelChecker`."""
    return ModelChecker(program, isolation, workers=workers).run(
        assertions=assertions, **kwargs
    )
