"""User assertions over model-checking outcomes.

An assertion is a named predicate over :class:`~repro.checking.result.Outcome`
objects; the checker evaluates it on every history the exploration outputs
and reports the violating outcomes.  Because the exploration is sound and
complete (Theorems 5.1/6.1), "no violation" is a *proof* of the assertion
for the bounded program under the chosen isolation level — no false
positives, unlike static dependency-graph analyses (§8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from .result import Outcome

Predicate = Callable[[Outcome], bool]


@dataclass(frozen=True)
class Assertion:
    """A named predicate expected to hold on every outcome."""

    name: str
    predicate: Predicate

    def holds(self, outcome: Outcome) -> bool:
        return bool(self.predicate(outcome))


def assertion(name: str) -> Callable[[Predicate], Assertion]:
    """Decorator form::

        @assertion("no overdraft")
        def no_overdraft(outcome):
            return outcome.value("teller", "balance") >= 0
    """

    def wrap(fn: Predicate) -> Assertion:
        return Assertion(name, fn)

    return wrap


def local_equals(session: str, local: str, expected: Hashable, txn_index: int = 0) -> Assertion:
    """Assert a transaction's local variable ends with a specific value."""
    return Assertion(
        f"{session}[{txn_index}].{local} == {expected!r}",
        lambda outcome: outcome.value(session, local, txn_index) == expected,
    )


def local_in(session: str, local: str, allowed: Sequence[Hashable], txn_index: int = 0) -> Assertion:
    """Assert a local variable ends with one of the allowed values."""
    allowed_set = set(allowed)
    return Assertion(
        f"{session}[{txn_index}].{local} in {sorted(map(repr, allowed_set))}",
        lambda outcome: outcome.value(session, local, txn_index) in allowed_set,
    )


def serializable_outcome(*assertions: Assertion) -> Assertion:
    """Conjunction of assertions under one name."""
    name = " and ".join(a.name for a in assertions)
    return Assertion(name, lambda outcome: all(a.holds(outcome) for a in assertions))
