"""Cross-isolation-level comparison reports.

The standard workflow of the paper's tool: run the same program and
assertions under a ladder of isolation levels and see where each assertion
starts to hold — i.e. *the weakest isolation level under which the
application is correct*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..isolation.base import IsolationLevel, get_level
from ..lang.program import Program
from .assertions import Assertion
from .checker import ModelChecker
from .result import CheckResult

DEFAULT_LADDER: Sequence[str] = ("RC", "RA", "CC", "SI", "SER")


@dataclass
class LevelComparison:
    """Results of one program checked under several isolation levels."""

    program_name: str
    results: Dict[str, CheckResult]
    assertions: List[str]

    def weakest_correct_level(self) -> Optional[str]:
        """The weakest level where every assertion held, or None."""
        for name, result in self.results.items():
            if result.ok and not result.timed_out:
                return name
        return None

    def verdict_table(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for name, result in self.results.items():
            rows.append(
                [
                    name,
                    result.history_count,
                    "PASS" if result.ok else f"FAIL({len(result.violations)})",
                    round(result.stats.seconds, 3),
                ]
            )
        return rows

    def render(self) -> str:
        from ..bench.reporting import format_table

        header = f"{self.program_name}: " + ", ".join(self.assertions)
        table = format_table(["isolation", "histories", "verdict", "time (s)"], self.verdict_table())
        weakest = self.weakest_correct_level()
        footer = (
            f"weakest correct level: {weakest}"
            if weakest
            else "no level in the ladder makes the program correct"
        )
        return f"{header}\n{table}\n{footer}"


def compare_levels(
    program: Program,
    assertions: Sequence[Assertion],
    levels: Sequence[Union[str, IsolationLevel]] = DEFAULT_LADDER,
    timeout: Optional[float] = None,
) -> LevelComparison:
    """Check ``program`` under each level of the (weak-to-strong) ladder."""
    results: Dict[str, CheckResult] = {}
    ordered = [get_level(l) if isinstance(l, str) else l for l in levels]
    for previous, current in zip(ordered, ordered[1:]):
        if not previous.is_weaker_than(current):
            raise ValueError(f"ladder must be ordered weak→strong: {previous.name} > {current.name}")
    for level in ordered:
        results[level.name] = ModelChecker(program, isolation=level).run(
            assertions=assertions, timeout=timeout
        )
    return LevelComparison(program.name, results, [a.name for a in assertions])
