"""Outcomes and results of a model-checking run.

An :class:`Outcome` wraps one complete history together with the program
that produced it, and exposes the *final local-variable valuations* of every
transaction — the state user assertions are written against (application
code observes the database only through its local variables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..core.canonical import format_history
from ..core.events import TxnId
from ..core.history import History
from ..dpor.stats import ExplorationStats
from ..lang.expr import Env
from ..lang.program import Program
from ..semantics.executor import final_env


class Outcome:
    """One terminal history of the program, with derived views."""

    def __init__(self, program: Program, history: History):
        self.program = program
        self.history = history
        self._envs: Dict[TxnId, Env] = {}

    def locals_of(self, session: str, txn_index: int = 0) -> Env:
        """Final local-variable valuation of one transaction."""
        tid = TxnId(session, txn_index)
        if tid not in self._envs:
            self._envs[tid] = final_env(self.program.transaction(tid), self.history.txns[tid])
        return self._envs[tid]

    def value(self, session: str, local: str, txn_index: int = 0) -> Hashable:
        """Shorthand: final value of one local variable."""
        return self.locals_of(session, txn_index).get(local)

    def committed(self, session: str, txn_index: int = 0) -> bool:
        """Whether the given transaction committed (vs. aborted)."""
        return self.history.txns[TxnId(session, txn_index)].is_committed

    def describe(self) -> str:
        """Readable rendering of the underlying history."""
        return format_history(self.history)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Outcome({self.program.name!r}, {self.history.event_count()} events)"


@dataclass
class Violation:
    """A failed assertion, with the witnessing outcome."""

    assertion: str
    outcome: Outcome

    def __repr__(self) -> str:
        return f"Violation({self.assertion!r})"

    def describe(self) -> str:
        return f"assertion {self.assertion!r} violated by:\n{self.outcome.describe()}"


@dataclass
class CheckResult:
    """Result of :meth:`repro.checking.checker.ModelChecker.run`."""

    program_name: str
    algorithm: str
    isolation: str
    history_count: int
    stats: ExplorationStats
    violations: List[Violation] = field(default_factory=list)
    #: Retained outcomes (None when collection was disabled).
    outcomes: Optional[List[Outcome]] = None

    @property
    def ok(self) -> bool:
        """True when every assertion held on every history."""
        return not self.violations

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out

    def summary(self) -> str:
        verdict = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return (
            f"{self.program_name} under {self.isolation} [{self.algorithm}]: "
            f"{self.history_count} histories, {self.stats.seconds:.2f}s — {verdict}"
        )
