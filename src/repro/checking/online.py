"""Online incremental isolation checking of streamed trace events.

:class:`OnlineChecker` consumes one :class:`~repro.trace.format.TraceEvent`
at a time and re-decides, after every append, which isolation levels the
prefix history observed so far satisfies.  The verdict after the last event
equals the batch verdict of the corresponding level checker on the
completed history — the *batch-equivalence guarantee*, property-tested in
``tests/test_online_checker.py`` on paper, fuzzed and application-workload
traces — and so does the verdict after every intermediate event, each
against the batch checker run on that prefix.

What is incremental
-------------------

* the ``so ∪ wr`` closure lives in one
  :class:`~repro.core.bitrel.RelationMatrix` that grows with the stream —
  ``add_node`` per ``begin``, ``add_edge`` per session-successor and
  write-read edge — instead of being rebuilt per event (the from-scratch
  build is cubic in transactions; the increments are O(affected rows));
* levels whose axioms are all co-free — RC/RA/CC and the session
  guarantees (RYW/MR/MW/WFR/SESSION) — run on
  :class:`~repro.isolation.saturation.IncrementalSaturation`:
  new axiom instances are quantifier-expanded only against the *new* event
  (a new wr edge meets existing writers; a new first-write meets existing
  reads), premises are re-evaluated only while unfired (they are monotone
  in the grow-only prefix), and the verdict is the maintained closure's
  O(1) acyclicity flag;
* the search levels — SI, SER, PSI, PC, BS-3 — re-run their memoized
  searches per event (their axioms mention the commit order, so no
  saturation state carries over) but on the maintained matrix (passed via
  ``History.adopt_causal_matrix``) rather than a rebuilt one.

Which camp a level falls in is read off its
:class:`~repro.isolation.registry.LevelSpec`, so spec-registered
extensions stream without touching this module.

The abort exception
-------------------

Aborting a transaction retroactively *removes* its writes (§2.2.1), the
one non-monotone step of the model: saturation instances quantified over
that writer — and any forced edges they already contributed — become
invalid.  Fired edges are recorded one-step in each state's matrix, so
the retraction is in place and exact
(``IncrementalSaturation.retract_writer``: clear the writer's fired
bits, re-close); write-free aborts don't touch the matrix at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.bitrel import RelationMatrix
from ..core.events import INIT_TXN, Event, TxnId
from ..core.history import History
from ..isolation.base import IsolationLevel, get_level
from ..isolation.registry import LevelSpec, level_spec
from ..isolation.saturation import IncrementalSaturation
from ..trace.format import Trace, TraceEvent, TraceHeader, TraceReplayer

#: The levels an OnlineChecker decides by default, weakest first (the
#: paper's chain; any registered level name is accepted — ``repro levels``
#: lists them all).
DEFAULT_LEVELS: Tuple[str, ...] = ("RC", "RA", "CC", "SI", "SER")


def _saturation_eligible(spec: LevelSpec) -> bool:
    """Whether a level is decided by incremental saturation online.

    Co-free axioms without an order predicate and without a bespoke search
    checker: the forced-edge state streams; everything else (SI/SER/PSI/
    PC/BS-3) re-runs its batch search per event on the maintained matrix.
    An axiom-free level (TRUE) is saturation-eligible regardless of its
    batch check — with no axioms the streamed verdict is exactly base
    ``so ∪ wr`` acyclicity.
    """
    if spec.order_predicate is not None:
        return False
    if not all(axiom.co_free for axiom in spec.axioms):
        return False
    return spec.check is None or not spec.axioms


@dataclass(frozen=True)
class OnlineStep:
    """The checker's state right after one fed event.

    ``verdicts`` maps each configured level name to whether the prefix
    history *up to and including this event* satisfies it;
    ``newly_violated`` lists the levels whose verdict flipped to ``False``
    on exactly this event — the streaming analogue of a violation witness.
    """

    index: int
    event: TraceEvent
    verdicts: Dict[str, bool]
    newly_violated: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every configured level still holds on this prefix."""
        return all(self.verdicts.values())


_NO_SOURCES: frozenset = frozenset()


class _TxnEvents:
    """Minimal stand-in for a ``TransactionLog``: just the event list."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = events


class _LogsProxy:
    """``txns[tid]`` over the replayer's live logs, no materialisation."""

    __slots__ = ("_logs",)

    def __init__(self, logs):
        self._logs = logs

    def __getitem__(self, tid: TxnId) -> _TxnEvents:
        return _TxnEvents(self._logs[tid])


class _PrefixFacts:
    """The slice of the :class:`~repro.core.history.History` surface that
    co-free axiom premises consult — ``txns``/``wr`` (RC), ``so_before`` /
    ``wr_edge`` (RA), ``causally_before`` (CC) — answered straight off the
    checker's maintained state in O(1) per query.

    Materialising the real history per fed event was the monitor's
    throughput ceiling: the premise pass only ever touches these five
    members, so the hot path passes this view instead and the history is
    built lazily only where search levels or abort rebuilds truly need it.
    """

    __slots__ = ("_checker", "txns")

    def __init__(self, checker: "OnlineChecker"):
        self._checker = checker
        self.txns = _LogsProxy(checker._replayer._logs)

    @property
    def wr(self):
        return self._checker._replayer.wr_map

    @staticmethod
    def so_before(a: TxnId, b: TxnId) -> bool:
        if a == b:
            return False
        if a == INIT_TXN:
            return True
        return a.session == b.session and a.index < b.index

    def wr_edge(self, a: TxnId, b: TxnId) -> bool:
        return a in self._checker._sources_read.get(b, _NO_SOURCES)

    def causally_before(self, a: TxnId, b: TxnId) -> bool:
        return self._checker._causal.reaches(a, b)


@dataclass(frozen=True)
class Frontier:
    """A snapshot of the checker's live window (watermark API).

    ``events`` counts every event fed so far; ``live`` the transactions
    currently materialised (``init`` included); ``evicted`` the
    transactions garbage-collected via :meth:`OnlineChecker.evict`;
    ``pending`` the still-open transactions (at most one per session);
    ``settled`` the live transactions whose causal ancestor cone is fully
    complete — the frozen past that eviction policies may nominate from.
    """

    events: int
    live: int
    evicted: int
    pending: Tuple[TxnId, ...]
    settled: Tuple[TxnId, ...]


class OnlineChecker:
    """Streaming isolation checker over a growing trace.

    Parameters
    ----------
    variables:
        The global-variable universe (usually from the trace header).
    initial:
        Per-variable initial values written by the implied ``init``
        transaction (default ``0`` each).
    levels:
        Which levels to decide after every event; any registered level
        names or aliases (default the paper's RC/RA/CC/SI/SER chain).
    record_steps:
        With the default ``True`` every :class:`OnlineStep` is retained
        (O(events) memory — fine for replay-and-inspect usage).  The
        streaming monitor passes ``False``: only steps that newly violate
        a level are kept (bounded by the number of levels), so
        :meth:`first_violation` still works on unbounded streams.

    Use :meth:`from_header` / :meth:`from_trace` when starting from a
    recorded trace, :meth:`feed` per streamed event, and :meth:`replay`
    for the whole-trace convenience loop.  :meth:`evict` and
    :meth:`frontier` are the garbage-collection mechanism the streaming
    monitor drives (policy lives in :mod:`repro.isolation.liveness`).
    """

    def __init__(
        self,
        variables: Iterable[str],
        initial: Optional[Mapping[str, Hashable]] = None,
        levels: Iterable[str] = DEFAULT_LEVELS,
        record_steps: bool = True,
    ):
        resolved: List[IsolationLevel] = []
        for raw in levels:
            try:
                level = get_level(str(raw))
            except KeyError as exc:
                raise ValueError(str(exc)) from None
            if level not in resolved:
                resolved.append(level)
        self.levels: Tuple[str, ...] = tuple(
            level.name for level in sorted(resolved, key=lambda l: l.strength)
        )
        header = TraceHeader(variables=tuple(sorted(set(variables))), initial=dict(initial or {}))
        self._replayer = TraceReplayer(header)
        #: Maintained so ∪ wr closure over all transactions, init included.
        self._causal = RelationMatrix((INIT_TXN,))
        self._saturation: Dict[str, IncrementalSaturation] = {}
        search: List[str] = []
        for name in self.levels:
            try:
                spec: Optional[LevelSpec] = level_spec(name)
            except KeyError:
                # Registered without a spec: fall back to its batch check.
                spec = None
            if spec is not None and _saturation_eligible(spec):
                self._saturation[name] = IncrementalSaturation(spec.axioms)
            else:
                search.append(name)
        self._search_levels: Tuple[str, ...] = tuple(search)
        #: var → (read event, source tid) for every external read so far.
        self._reads_of_var: Dict[str, List[Tuple[Event, TxnId]]] = {}
        #: var → transactions with a visible (non-aborted) write, in order.
        self._writers_of_var: Dict[str, List[TxnId]] = {
            var: [INIT_TXN] for var in header.variables
        }
        self._steps: List[OnlineStep] = []
        self._record_steps = record_steps
        self._verdicts: Dict[str, bool] = {}
        self._history: Optional[History] = None
        self._evicted = 0
        #: reader → wr sources of its external reads so far.  Equals the
        #: lifted ``wr`` pairs restricted to live transactions; answers
        #: the RA premise and the RC fast path in O(1).
        self._sources_read: Dict[TxnId, Set[TxnId]] = {}
        self._facts = _PrefixFacts(self)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_header(cls, header: TraceHeader, levels: Iterable[str] = DEFAULT_LEVELS) -> "OnlineChecker":
        """A checker primed with a trace header's variable universe."""
        return cls(header.variables, initial=header.initial, levels=levels)

    @classmethod
    def from_trace(cls, trace: Trace, levels: Iterable[str] = DEFAULT_LEVELS) -> "OnlineChecker":
        """A checker primed with ``trace``'s header (events not yet fed)."""
        return cls.from_header(trace.header, levels=levels)

    # -- feeding ----------------------------------------------------------------

    def feed(self, event: TraceEvent) -> OnlineStep:
        """Append one event, update the incremental state, re-decide levels."""
        added = self._replayer.apply(event)
        tid = event.tid
        if event.op == "begin":
            self._causal.add_node(tid)
            order = self._replayer.session_order(tid.session)
            prev = order[-2] if len(order) > 1 else INIT_TXN
            self._causal.add_edge(prev, tid)
            for state in self._saturation.values():
                state.add_transaction(tid)
                state.add_base_edge(prev, tid)
        elif event.op == "read" and not event.local:
            source = self._replayer.wr_source(added.eid)
            if source != tid:
                self._causal.add_edge(source, tid)
            prior = self._sources_read.setdefault(tid, set())
            prior.add(source)
            # New axiom instances: this read against every existing writer.
            self._reads_of_var.setdefault(event.var, []).append((added, source))
            writers = self._writers_of_var.get(event.var, ())
            for state in self._saturation.values():
                state.add_base_edge(source, tid)
                if not state.static_only:
                    for t2 in writers:
                        if t2 != source:
                            state.add_instance(source, t2, added)
                elif state.consistent:
                    # Static premises (RC): the verdict per instance is
                    # final now — decide it here instead of queueing a
                    # pending scan.  The wr∘po premise is one lookup in
                    # the reader's source set (the current read's own
                    # source only matches t2 == source, which the schema
                    # excludes, so testing the updated set is exact).
                    if state.prior_source_only:
                        for t2 in writers:
                            if t2 != source and t2 in prior:
                                state.force_edge(t2, source)
                                if not state.consistent:
                                    break
                    else:
                        for t2 in writers:
                            if (
                                t2 != source
                                and state.evaluate_instance(source, t2, added, self._facts)
                                and not state.consistent
                            ):
                                break
        elif event.op == "write":
            writers = self._writers_of_var.setdefault(event.var, [])
            if tid not in writers:
                writers.append(tid)
                # New axiom instances: this writer against every existing read.
                reads = self._reads_of_var.get(event.var, ())
                for state in self._saturation.values():
                    if state.static_only:
                        if state.consistent:
                            for read, t1 in reads:
                                if (
                                    tid != t1
                                    and state.evaluate_instance(t1, tid, read, self._facts)
                                    and not state.consistent
                                ):
                                    break
                    else:
                        for read, t1 in reads:
                            if tid != t1:
                                state.add_instance(t1, tid, read)
        self._history = None
        # The prefix history is never materialised on the saturation hot
        # path: premises are decided against the O(1) facts view, so only
        # search levels (SI/SER) and fired-writer abort rebuilds pay for
        # a real history.
        if event.op == "abort":
            self._retract_aborted_writer(tid)
        for state in self._saturation.values():
            if state.pending_instances:
                state.advance(self._facts)
        previous = self._verdicts
        verdicts: Dict[str, bool] = {}
        base_acyclic = self._causal.is_acyclic()
        for name in self.levels:
            if name in self._saturation:
                verdicts[name] = base_acyclic and self._saturation[name].consistent
            elif not base_acyclic:
                verdicts[name] = False
            else:
                # Search levels (SI/SER/PSI/PC/BS-3 and any spec-registered
                # extension): batch check on the prefix history, running on
                # the maintained matrix via adopt_causal_matrix.
                verdicts[name] = get_level(name).satisfies(self.history())
        newly = tuple(
            name for name in self.levels if not verdicts[name] and previous.get(name, True)
        )
        self._verdicts = verdicts
        step = OnlineStep(
            index=self._replayer.event_count - 1,
            event=event,
            verdicts=verdicts,
            newly_violated=newly,
        )
        if self._record_steps or newly:
            self._steps.append(step)
        return step

    def replay(self, trace: Trace) -> List[OnlineStep]:
        """Feed every event of ``trace``; returns one step per event."""
        return [self.feed(event) for event in trace.events]

    def _retract_aborted_writer(self, tid: TxnId) -> None:
        """Undo the aborted transaction's role as a writer (§2.2.1).

        Its writes become invisible, so it leaves every ``writers_of``
        bucket, every pending instance, and — if it had fired forced edges
        — the maintained relation, via
        :meth:`IncrementalSaturation.retract_writer` (exact in-place
        retraction; premises are co-free, so un-firing this writer's
        edges cannot un-fire anyone else's).  On mostly-clean streams
        aborted writers fired nothing and the matrix is untouched,
        keeping the streaming monitor's per-event cost flat.
        """
        if not self._replayer.wrote_any(tid):
            return
        for writers in self._writers_of_var.values():
            if tid in writers:
                writers.remove(tid)
        for state in self._saturation.values():
            state.retract_writer(tid)

    # -- garbage collection (streaming-monitor mechanism) -----------------------

    def pending_transactions(self) -> Tuple[TxnId, ...]:
        """Still-open transactions, at most one per session."""
        return tuple(
            tid for tid in self._replayer.transactions()
            if tid != INIT_TXN and not self._replayer.is_complete(tid)
        )

    def pending_mask(self) -> int:
        """Bitmask of pending transactions in the maintained causal matrix."""
        mask = 0
        for tid in self._replayer.transactions():
            if tid != INIT_TXN and not self._replayer.is_complete(tid):
                mask |= 1 << self._causal.index_of(tid)
        return mask

    def is_settled(self, tid: TxnId, pending_mask: Optional[int] = None) -> bool:
        """Whether ``tid``'s causal (``so ∪ wr``) ancestor cone is complete.

        A settled transaction's in-edge set and premise-relevant past are
        frozen: no pending ancestor can still write, so no new axiom
        instance against its reads can ever fire.  This is the common gate
        of every eviction policy.
        """
        if pending_mask is None:
            pending_mask = self.pending_mask()
        return not (self._causal.ancestors_mask(tid) & pending_mask)

    def live_wr_sources(self) -> Set[TxnId]:
        """Transactions named as wr source by a read that can still re-arm.

        While such a read is live, a future first-write of its variable
        can fire a forced edge *into* the source — so the source must
        stay.  The reads that can still do that are exactly the un-pruned
        ``reads-of-var`` entries (settled readers' reads are frozen and
        dropped by :meth:`prune_settled`); a settled reader keeps its
        replayer bookkeeping but no longer pins its sources.  Premises
        quantifying an evicted source as *writer* (``t2``) need the reader
        to have read from it directly, which implies an un-pruned entry
        too — new instances never mention an evicted source in any role.
        """
        return {
            source
            for reads in self._reads_of_var.values()
            for _read, source in reads
        }

    def saturation_states(self) -> Tuple["IncrementalSaturation", ...]:
        """The per-level saturation states (read-only; GC-gate probing)."""
        return tuple(self._saturation.values())

    def frontier(self) -> Frontier:
        """The live-window snapshot (see :class:`Frontier`)."""
        pending_mask = self.pending_mask()
        pending = self.pending_transactions()
        settled = tuple(
            tid for tid in self._replayer.transactions()
            if tid != INIT_TXN
            and self._replayer.is_complete(tid)
            and not (self._causal.ancestors_mask(tid) & pending_mask)
        )
        return Frontier(
            events=self._replayer.event_count,
            live=self._replayer.live_count,
            evicted=self._evicted,
            pending=pending,
            settled=settled,
        )

    @property
    def evicted_count(self) -> int:
        """Transactions garbage-collected via :meth:`evict` so far."""
        return self._evicted

    @property
    def live_transaction_count(self) -> int:
        """Currently materialised transactions (``init`` included)."""
        return self._replayer.live_count

    def evict(self, tids: Iterable[TxnId]) -> int:
        """Drop the given transactions from every maintained structure.

        This is the *mechanism*; eviction *policy* — which transactions can
        provably never participate in a future violation at the configured
        level — lives in :mod:`repro.isolation.liveness` and is what the
        streaming monitor consults before calling this.  The mechanism
        validates only the invariants whose violation would corrupt state
        outright: ``init``, pending transactions and each session's most
        recently begun transaction (its next ``begin`` still needs an
        ``so`` edge from it) are refused with ``ValueError``.

        Forced edges fired by evicted readers survive in each saturation
        state's ``fired_edges`` record (endpoints permitting), keeping
        abort-of-a-writer rebuilds exact afterwards.  Returns the number
        of transactions evicted.
        """
        drop = set(tids)
        if not drop:
            return 0
        for tid in drop:
            if tid == INIT_TXN:
                raise ValueError("cannot evict the init transaction")
            if not self._replayer.is_live(tid):
                raise ValueError(f"cannot evict unknown/already-evicted {tid!r}")
            if not self._replayer.is_complete(tid):
                raise ValueError(f"cannot evict pending transaction {tid!r}")
            order = self._replayer.session_order(tid.session)
            if order and order[-1] == tid:
                raise ValueError(f"cannot evict session-latest transaction {tid!r}")
        self._replayer.forget(drop)
        self._causal = self._causal.remove_nodes(drop)
        for state in self._saturation.values():
            state.evict(drop)
        for var, reads in list(self._reads_of_var.items()):
            kept = [(read, source) for read, source in reads if read.eid.txn not in drop]
            if kept:
                self._reads_of_var[var] = kept
            else:
                del self._reads_of_var[var]
        for writers in self._writers_of_var.values():
            if any(t in drop for t in writers):
                writers[:] = [t for t in writers if t not in drop]
        for tid in drop:
            self._sources_read.pop(tid, None)
        self._history = None
        self._evicted += len(drop)
        return len(drop)

    def prune_settled(self) -> int:
        """Drop bookkeeping that settled, complete readers can never re-arm.

        Once a reader is settled every so/wr edge into it is frozen, so a
        pending instance over one of its reads that has not fired is false
        forever, and any *future* writer's instance against those reads
        would evaluate the same frozen premise — also false (a complete
        ancestor's writes were all seen; a non-ancestor never satisfies an
        RA/CC premise, and an RC premise would need the reader to have
        read from the future writer, which its frozen log does not).  So
        both the pending instances and the ``reads-of-var`` entries of
        settled readers are dropped.  Returns the number of entries
        pruned.  This is what bounds the monitor's per-event quantifier
        state on unbounded streams.
        """
        pending_mask = self.pending_mask()
        causal = self._causal
        replayer = self._replayer

        def reader_settled(tid: TxnId) -> bool:
            return replayer.is_complete(tid) and not (
                causal.ancestors_mask(tid) & pending_mask
            )

        pruned = 0
        for var, reads in list(self._reads_of_var.items()):
            kept = [
                (read, source)
                for read, source in reads
                if not reader_settled(read.eid.txn)
            ]
            pruned += len(reads) - len(kept)
            if kept:
                self._reads_of_var[var] = kept
            else:
                del self._reads_of_var[var]
        for state in self._saturation.values():
            pruned += state.prune_pending(
                lambda t1, t2, read: reader_settled(read.eid.txn)
            )
        return pruned

    # -- state ----------------------------------------------------------------------

    def history(self) -> History:
        """The prefix history, with the maintained closure pre-adopted.

        Materialised lazily per fed event; the returned history's
        ``causal_matrix()`` is a frozen copy of the maintained matrix, so
        downstream consistency checks never rebuild the relation.
        """
        if self._history is None:
            history = self._replayer.history()
            history.adopt_causal_matrix(self._causal.copy())
            self._history = history
        return self._history

    @property
    def replayer(self) -> TraceReplayer:
        """The underlying trace → history state machine (read-only use)."""
        return self._replayer

    @property
    def causal_matrix(self) -> RelationMatrix:
        """The maintained ``so ∪ wr`` closure (do not mutate)."""
        return self._causal

    @property
    def verdicts(self) -> Dict[str, bool]:
        """Level → verdict on the current prefix (all True before any event)."""
        if not self._verdicts:
            return {name: True for name in self.levels}
        return dict(self._verdicts)

    @property
    def steps(self) -> Tuple[OnlineStep, ...]:
        """Every step so far, in feed order."""
        return tuple(self._steps)

    def first_violation(self, level: str) -> Optional[OnlineStep]:
        """The step at which ``level`` first flipped to violated, if any."""
        name = level.upper()
        if name not in self.levels:
            raise KeyError(f"level {name!r} is not being checked (have {self.levels})")
        for step in self._steps:
            if name in step.newly_violated:
                return step
        return None


def check_trace(
    trace: Trace, levels: Iterable[str] = DEFAULT_LEVELS, online: bool = False
) -> Dict[str, bool]:
    """One-shot trace checking: level → verdict on the complete trace.

    ``online`` routes through :class:`OnlineChecker` (event-at-a-time,
    incremental); otherwise each level's batch checker runs once on the
    replayed history.  Both paths return identical verdicts (the
    batch-equivalence guarantee).
    """
    names = [str(l).upper() for l in levels]
    if online:
        checker = OnlineChecker.from_trace(trace, levels=names)
        checker.replay(trace)
        return checker.verdicts
    history = trace.to_history(strict=False)
    return {name: get_level(name).satisfies(history) for name in names}
