"""Online incremental isolation checking of streamed trace events.

:class:`OnlineChecker` consumes one :class:`~repro.trace.format.TraceEvent`
at a time and re-decides, after every append, which isolation levels the
prefix history observed so far satisfies.  The verdict after the last event
equals the batch verdict of the corresponding level checker on the
completed history — the *batch-equivalence guarantee*, property-tested in
``tests/test_online_checker.py`` on paper, fuzzed and application-workload
traces — and so does the verdict after every intermediate event, each
against the batch checker run on that prefix.

What is incremental
-------------------

* the ``so ∪ wr`` closure lives in one
  :class:`~repro.core.bitrel.RelationMatrix` that grows with the stream —
  ``add_node`` per ``begin``, ``add_edge`` per session-successor and
  write-read edge — instead of being rebuilt per event (the from-scratch
  build is cubic in transactions; the increments are O(affected rows));
* RC/RA/CC run on :class:`~repro.isolation.saturation.IncrementalSaturation`:
  new axiom instances are quantifier-expanded only against the *new* event
  (a new wr edge meets existing writers; a new first-write meets existing
  reads), premises are re-evaluated only while unfired (they are monotone
  in the grow-only prefix), and the verdict is the maintained closure's
  O(1) acyclicity flag;
* SI and SER re-run their frontier-memoized searches per event — their
  axioms mention the commit order, so no saturation state carries over —
  but on the maintained matrix (passed via ``History.adopt_causal_matrix``)
  rather than a rebuilt one.

The abort exception
-------------------

Aborting a transaction retroactively *removes* its writes (§2.2.1), the
one non-monotone step of the model: saturation instances quantified over
that writer — and any forced edges they already contributed — become
invalid, and edges cannot leave a closure.  When an aborted transaction
had writes, the affected saturation states are rebuilt from the prefix
(``IncrementalSaturation.from_history``); write-free aborts stay fully
incremental.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..core.bitrel import RelationMatrix
from ..core.events import INIT_TXN, Event, TxnId
from ..core.history import History
from ..isolation.axioms import AXIOMS_BY_LEVEL
from ..isolation.base import get_level
from ..isolation.saturation import IncrementalSaturation
from ..isolation.serializability import satisfies_ser
from ..isolation.snapshot import satisfies_si
from ..trace.format import Trace, TraceEvent, TraceHeader, TraceReplayer

#: The levels an OnlineChecker decides by default, weakest first.
DEFAULT_LEVELS: Tuple[str, ...] = ("RC", "RA", "CC", "SI", "SER")

#: Levels with co-free axioms, decided by incremental saturation.
_SATURATION_LEVELS = frozenset(("RC", "RA", "CC"))


@dataclass(frozen=True)
class OnlineStep:
    """The checker's state right after one fed event.

    ``verdicts`` maps each configured level name to whether the prefix
    history *up to and including this event* satisfies it;
    ``newly_violated`` lists the levels whose verdict flipped to ``False``
    on exactly this event — the streaming analogue of a violation witness.
    """

    index: int
    event: TraceEvent
    verdicts: Dict[str, bool]
    newly_violated: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every configured level still holds on this prefix."""
        return all(self.verdicts.values())


class OnlineChecker:
    """Streaming isolation checker over a growing trace.

    Parameters
    ----------
    variables:
        The global-variable universe (usually from the trace header).
    initial:
        Per-variable initial values written by the implied ``init``
        transaction (default ``0`` each).
    levels:
        Which levels to decide after every event; any subset of
        RC/RA/CC/SI/SER (default all five).

    Use :meth:`from_header` / :meth:`from_trace` when starting from a
    recorded trace, :meth:`feed` per streamed event, and :meth:`replay`
    for the whole-trace convenience loop.
    """

    def __init__(
        self,
        variables: Iterable[str],
        initial: Optional[Mapping[str, Hashable]] = None,
        levels: Iterable[str] = DEFAULT_LEVELS,
    ):
        self.levels: Tuple[str, ...] = tuple(
            sorted((str(l).upper() for l in levels), key=lambda n: get_level(n).strength)
        )
        unknown = [l for l in self.levels if l not in DEFAULT_LEVELS]
        if unknown:
            raise ValueError(f"online checking supports {DEFAULT_LEVELS}, not {unknown}")
        header = TraceHeader(variables=tuple(sorted(set(variables))), initial=dict(initial or {}))
        self._replayer = TraceReplayer(header)
        #: Maintained so ∪ wr closure over all transactions, init included.
        self._causal = RelationMatrix((INIT_TXN,))
        self._saturation: Dict[str, IncrementalSaturation] = {
            name: IncrementalSaturation(AXIOMS_BY_LEVEL[name])
            for name in self.levels
            if name in _SATURATION_LEVELS
        }
        self._search_levels: Tuple[str, ...] = tuple(
            name for name in self.levels if name not in _SATURATION_LEVELS
        )
        #: var → (read event, source tid) for every external read so far.
        self._reads_of_var: Dict[str, List[Tuple[Event, TxnId]]] = {}
        #: var → transactions with a visible (non-aborted) write, in order.
        self._writers_of_var: Dict[str, List[TxnId]] = {
            var: [INIT_TXN] for var in header.variables
        }
        self._steps: List[OnlineStep] = []
        self._verdicts: Dict[str, bool] = {}
        self._history: Optional[History] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_header(cls, header: TraceHeader, levels: Iterable[str] = DEFAULT_LEVELS) -> "OnlineChecker":
        """A checker primed with a trace header's variable universe."""
        return cls(header.variables, initial=header.initial, levels=levels)

    @classmethod
    def from_trace(cls, trace: Trace, levels: Iterable[str] = DEFAULT_LEVELS) -> "OnlineChecker":
        """A checker primed with ``trace``'s header (events not yet fed)."""
        return cls.from_header(trace.header, levels=levels)

    # -- feeding ----------------------------------------------------------------

    def feed(self, event: TraceEvent) -> OnlineStep:
        """Append one event, update the incremental state, re-decide levels."""
        added = self._replayer.apply(event)
        tid = event.tid
        if event.op == "begin":
            self._causal.add_node(tid)
            order = self._replayer.session_order(tid.session)
            prev = order[-2] if len(order) > 1 else INIT_TXN
            self._causal.add_edge(prev, tid)
            for state in self._saturation.values():
                state.add_transaction(tid)
                state.add_base_edge(prev, tid)
        elif event.op == "read" and not event.local:
            source = self._replayer.wr_source(added.eid)
            if source != tid:
                self._causal.add_edge(source, tid)
            for state in self._saturation.values():
                state.add_base_edge(source, tid)
            # New axiom instances: this read against every existing writer.
            self._reads_of_var.setdefault(event.var, []).append((added, source))
            for state in self._saturation.values():
                for t2 in self._writers_of_var.get(event.var, ()):
                    if t2 != source:
                        state.add_instance(source, t2, added)
        elif event.op == "write":
            writers = self._writers_of_var.setdefault(event.var, [])
            if tid not in writers:
                writers.append(tid)
                # New axiom instances: this writer against every existing read.
                for state in self._saturation.values():
                    for read, t1 in self._reads_of_var.get(event.var, ()):
                        if tid != t1:
                            state.add_instance(t1, tid, read)
        self._history = None
        history = self.history()
        if event.op == "abort":
            self._retract_aborted_writer(tid, history)
        for state in self._saturation.values():
            state.advance(history)
        previous = self._verdicts
        verdicts: Dict[str, bool] = {}
        base_acyclic = self._causal.is_acyclic()
        for name in self.levels:
            if name in self._saturation:
                verdicts[name] = base_acyclic and self._saturation[name].consistent
            elif not base_acyclic:
                verdicts[name] = False
            elif name == "SI":
                verdicts[name] = satisfies_si(history)
            else:
                verdicts[name] = satisfies_ser(history)
        newly = tuple(
            name for name in self.levels if not verdicts[name] and previous.get(name, True)
        )
        self._verdicts = verdicts
        step = OnlineStep(
            index=self._replayer.event_count - 1,
            event=event,
            verdicts=verdicts,
            newly_violated=newly,
        )
        self._steps.append(step)
        return step

    def replay(self, trace: Trace) -> List[OnlineStep]:
        """Feed every event of ``trace``; returns one step per event."""
        return [self.feed(event) for event in trace.events]

    def _retract_aborted_writer(self, tid: TxnId, history: History) -> None:
        """Undo the aborted transaction's role as a writer (§2.2.1).

        Its writes become invisible, so it leaves every ``writers_of``
        bucket and every pending instance; saturation states that may have
        already fired an instance quantified over it are rebuilt from the
        prefix — the one place online checking falls back to batch work.
        """
        if not self._replayer.wrote_any(tid):
            return
        for writers in self._writers_of_var.values():
            if tid in writers:
                writers.remove(tid)
        for name in list(self._saturation):
            self._saturation[name] = IncrementalSaturation.from_history(
                history, AXIOMS_BY_LEVEL[name]
            )

    # -- state ----------------------------------------------------------------------

    def history(self) -> History:
        """The prefix history, with the maintained closure pre-adopted.

        Materialised lazily per fed event; the returned history's
        ``causal_matrix()`` is a frozen copy of the maintained matrix, so
        downstream consistency checks never rebuild the relation.
        """
        if self._history is None:
            history = self._replayer.history()
            history.adopt_causal_matrix(self._causal.copy())
            self._history = history
        return self._history

    @property
    def verdicts(self) -> Dict[str, bool]:
        """Level → verdict on the current prefix (all True before any event)."""
        if not self._verdicts:
            return {name: True for name in self.levels}
        return dict(self._verdicts)

    @property
    def steps(self) -> Tuple[OnlineStep, ...]:
        """Every step so far, in feed order."""
        return tuple(self._steps)

    def first_violation(self, level: str) -> Optional[OnlineStep]:
        """The step at which ``level`` first flipped to violated, if any."""
        name = level.upper()
        if name not in self.levels:
            raise KeyError(f"level {name!r} is not being checked (have {self.levels})")
        for step in self._steps:
            if name in step.newly_violated:
                return step
        return None


def check_trace(
    trace: Trace, levels: Iterable[str] = DEFAULT_LEVELS, online: bool = False
) -> Dict[str, bool]:
    """One-shot trace checking: level → verdict on the complete trace.

    ``online`` routes through :class:`OnlineChecker` (event-at-a-time,
    incremental); otherwise each level's batch checker runs once on the
    replayed history.  Both paths return identical verdicts (the
    batch-equivalence guarantee).
    """
    names = [str(l).upper() for l in levels]
    if online:
        checker = OnlineChecker.from_trace(trace, levels=names)
        checker.replay(trace)
        return checker.verdicts
    history = trace.to_history(strict=False)
    return {name: get_level(name).satisfies(history) for name in names}
