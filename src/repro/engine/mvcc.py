"""A small in-process, multi-threaded MVCC key-value engine.

This is the "system under test" half of the differential-testing harness:
a storage engine with version-chain storage, a :class:`LockManager` with
configurable two-phase-locking strictness, snapshot read visibility, and
a commit log whose entries are *exactly* v1 trace records — running a
workload and calling :meth:`MVCCEngine.to_trace` yields a file the
checker in :mod:`repro.checking.online` can replay unchanged.

Each :class:`EngineConfig` *claims* an isolation level:

* ``read-committed`` — reads see the latest committed version; exclusive
  write locks held to commit; claims **RC**.
* ``snapshot-isolation`` — reads come from the begin snapshot; writers
  take exclusive locks and lose first-committer-wins conflicts; claims
  **SI**.
* ``serializable`` — strict two-phase locking: shared locks on read,
  exclusive on write, all held to commit; claims **SER**.

On top of each honest configuration sit deliberately *seeded bugs*
(:data:`SEEDED_BUGS`) — drop the read locks, lose first-committer-wins,
lag the snapshot, release write locks early, serve stale replica reads —
each of which demotes the actual isolation level below the claim in a
way :class:`~repro.checking.online.OnlineChecker` must detect.  The
mapping from knob to expected demotion is part of the regression suite
(``tests/test_engine_difftest.py``) and documented in ``docs/engine.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.events import INIT_SESSION
from ..core.serde import to_jsonable
from ..trace.format import Trace
from .locks import (
    EXCLUSIVE,
    SHARED,
    EngineError,
    LockManager,
    TransactionAborted,
    TxnKey,
    WouldBlock,
)
from .schedule import Scheduler

#: The commit-log name the trace format reserves for the initial state.
INIT_KEY: TxnKey = (INIT_SESSION, 0)


# ---------------------------------------------------------------------------
# configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineConfig:
    """One concurrency-control policy plus its claimed isolation level.

    The first block of fields selects the honest mechanism; the second
    block holds the seeded bug knobs, all off by default.  A config with
    a bug still *claims* the base level — that lie is what the difftest
    harness exists to catch.
    """

    name: str
    claimed: str  # RC | SI | SER
    snapshot_reads: bool  # read from the begin snapshot, not latest-committed
    read_locks: bool  # shared locks on read, held to commit (S2PL)
    first_committer_wins: bool  # abort on write-write conflict at commit

    # -- seeded bug knobs ------------------------------------------------------
    bug: Optional[str] = None
    dirty_writes: bool = False  # publish writes in place and release X early
    snapshot_lag: int = 0  # read snapshots this many commits behind begin
    replica_lag: int = 0  # reads of the lagged key partition miss this many commits

    def describe(self) -> str:
        mech = []
        mech.append("snapshot reads" if self.snapshot_reads else "latest-committed reads")
        mech.append("S+X locks" if self.read_locks else "X locks only")
        if self.first_committer_wins:
            mech.append("first-committer-wins")
        if self.bug:
            mech.append(f"BUG:{self.bug}")
        return f"{self.name} (claims {self.claimed}; {', '.join(mech)})"


@dataclass(frozen=True)
class SeededBug:
    """One deliberately planted engine defect and its expected detection."""

    name: str
    base: str  # honest config the bug is planted in
    description: str
    breaks: str  # weakest isolation level the bug violates
    detected: Optional[str]  # strongest level still passing (None: not even RC)
    knobs: Mapping[str, object] = field(default_factory=dict)

    def config(self) -> "EngineConfig":
        base = HONEST_CONFIGS[self.base]
        return replace(base, name=f"{self.base}+{self.name}", bug=self.name, **self.knobs)


HONEST_CONFIGS: Dict[str, EngineConfig] = {
    cfg.name: cfg
    for cfg in (
        EngineConfig(
            name="read-committed",
            claimed="RC",
            snapshot_reads=False,
            read_locks=False,
            first_committer_wins=False,
        ),
        EngineConfig(
            name="snapshot-isolation",
            claimed="SI",
            snapshot_reads=True,
            read_locks=False,
            first_committer_wins=True,
        ),
        EngineConfig(
            name="serializable",
            claimed="SER",
            snapshot_reads=False,
            read_locks=True,
            first_committer_wins=False,
        ),
    )
}

SEEDED_BUGS: Dict[str, SeededBug] = {
    bug.name: bug
    for bug in (
        SeededBug(
            name="no_read_locks",
            base="serializable",
            description="S2PL without the shared read locks: write skew slips through",
            breaks="SER",
            detected="SI",
            knobs={"read_locks": False},
        ),
        SeededBug(
            name="first_committer_loses",
            base="snapshot-isolation",
            description="write-write conflict check disabled: lost updates",
            breaks="SI",
            detected="CC",
            knobs={"first_committer_wins": False},
        ),
        SeededBug(
            name="stale_snapshot",
            base="snapshot-isolation",
            description="snapshots lag one commit behind begin: own commits vanish",
            breaks="RA",
            detected="RC",
            knobs={"snapshot_lag": 1},
        ),
        SeededBug(
            name="early_release",
            base="read-committed",
            description="writes published in place, locks released early: dirty reads",
            breaks="RC",
            detected=None,
            knobs={"dirty_writes": True},
        ),
        SeededBug(
            name="lagging_replica",
            base="read-committed",
            description="reads of half the key space served one commit stale",
            breaks="RC",
            detected=None,
            knobs={"replica_lag": 1},
        ),
    )
}


def engine_configs(include_bugs: bool = True) -> Dict[str, EngineConfig]:
    """All named configurations: honest ones, plus bugged variants."""
    configs = dict(HONEST_CONFIGS)
    if include_bugs:
        for bug in SEEDED_BUGS.values():
            cfg = bug.config()
            configs[cfg.name] = cfg
    return configs


def get_engine_config(name: str) -> EngineConfig:
    """Resolve ``name`` to a config.

    Accepts an honest name (``serializable``), a bugged name
    (``serializable+no_read_locks``), or a bare bug name
    (``no_read_locks``).
    """
    configs = engine_configs()
    if name in configs:
        return configs[name]
    if name in SEEDED_BUGS:
        return SEEDED_BUGS[name].config()
    raise EngineError(
        f"unknown engine config {name!r}; try one of {sorted(configs)} "
        f"or a bug name in {sorted(SEEDED_BUGS)}"
    )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


@dataclass
class EngineTxn:
    """The handle a session holds while a transaction is in flight."""

    session: str
    index: int
    begin_seq: int  # commit counter at begin (FCW baseline)
    snapshot_seq: int  # visibility horizon for snapshot reads
    buffer: Dict[str, Hashable] = field(default_factory=dict)
    status: str = "pending"  # pending | committed | aborted

    @property
    def key(self) -> TxnKey:
        return (self.session, self.index)


@dataclass
class EngineStats:
    commits: int = 0
    user_aborts: int = 0
    deadlock_aborts: int = 0
    fcw_aborts: int = 0
    lock_waits: int = 0


class MVCCEngine:
    """Version-chain storage driven through a scheduler by worker threads.

    Every public operation is guarded by a single engine latch, so under
    free-running threads individual operations are atomic (like a real
    engine's short internal critical sections) while their *interleaving*
    is genuinely concurrent.  The commit log is appended under the latch
    in observation order, which is what makes it a replayable trace: a
    read is always logged after the write it observed, a begin before the
    transaction's operations, and session indices are sequential.
    """

    def __init__(
        self,
        config: EngineConfig,
        variables: Tuple[str, ...],
        initial: Optional[Mapping[str, Hashable]] = None,
        scheduler: Optional[Scheduler] = None,
        default_initial: Hashable = 0,
    ):
        self.config = config
        self.variables = tuple(sorted(variables))
        self.initial = {var: default_initial for var in self.variables}
        self.initial.update(initial or {})
        self.scheduler = scheduler
        self.stats = EngineStats()
        self._latch = threading.RLock()
        #: var → version chain: list of (commit_seq, writer, value), seq ascending.
        self._versions: Dict[str, List[Tuple[int, TxnKey, Hashable]]] = {
            var: [(0, INIT_KEY, self.initial[var])] for var in self.variables
        }
        #: var → stack of uncommitted in-place writes (dirty_writes bug only).
        self._dirty: Dict[str, List[Tuple[TxnKey, Hashable]]] = {}
        self._locks = LockManager()
        self._commit_seq = 0
        self._next_index: Dict[str, int] = {}
        #: the commit log: v1 trace records, in observation order.
        self.log: List[Dict] = []
        #: txn → (first op tick, last op tick) for race forensics in tests.
        self.spans: Dict[TxnKey, Tuple[int, int]] = {}
        self._tick = 0
        #: keys whose reads the lagging-replica bug serves stale: every
        #: other variable in sorted order, so workloads touching two keys
        #: always straddle the fresh/stale partition boundary.
        self.lagged_keys = (
            frozenset(self.variables[::2]) if config.replica_lag else frozenset()
        )

    # -- public transaction API (call via scheduler.run_op) --------------------

    def begin(self, session: str) -> EngineTxn:
        with self._latch:
            if session == INIT_SESSION:
                raise EngineError(f"session name {session!r} is reserved")
            index = self._next_index.get(session, 0)
            self._next_index[session] = index + 1
            snapshot = max(0, self._commit_seq - self.config.snapshot_lag)
            txn = EngineTxn(session, index, begin_seq=self._commit_seq, snapshot_seq=snapshot)
            self._touch(txn)
            self._append({"type": "begin", "session": session, "txn": index})
            return txn

    def read(self, txn: EngineTxn, var: str) -> Hashable:
        with self._latch:
            self._check_pending(txn)
            self._check_var(var)
            if var in txn.buffer:
                self._touch(txn)
                self._append(
                    {
                        "type": "read",
                        "session": txn.session,
                        "txn": txn.index,
                        "var": var,
                        "value": to_jsonable(txn.buffer[var]),
                        "local": True,
                    }
                )
                return txn.buffer[var]
            if self.config.read_locks:
                self._acquire(txn, var, SHARED)
            writer, value = self._visible_version(txn, var)
            self._touch(txn)
            self._append(
                {
                    "type": "read",
                    "session": txn.session,
                    "txn": txn.index,
                    "var": var,
                    "value": to_jsonable(value),
                    "from": [writer[0], writer[1]],
                }
            )
            return value

    def write(self, txn: EngineTxn, var: str, value: Hashable) -> None:
        with self._latch:
            self._check_pending(txn)
            self._check_var(var)
            self._acquire(txn, var, EXCLUSIVE)
            txn.buffer[var] = value
            self._touch(txn)
            self._append(
                {
                    "type": "write",
                    "session": txn.session,
                    "txn": txn.index,
                    "var": var,
                    "value": to_jsonable(value),
                }
            )
            if self.config.dirty_writes:
                # The seeded bug: publish in place and give the lock back
                # immediately, exposing the uncommitted value to everyone.
                self._dirty.setdefault(var, []).append((txn.key, value))
                self._locks.release(txn.key, var)
                self._wake()

    def commit(self, txn: EngineTxn) -> None:
        with self._latch:
            self._check_pending(txn)
            if (
                self.config.snapshot_reads
                and self.config.first_committer_wins
                and txn.buffer
            ):
                for var in sorted(txn.buffer):
                    latest_seq = self._versions[var][-1][0]
                    if latest_seq > txn.begin_seq:
                        self.stats.fcw_aborts += 1
                        self._abort_locked(txn)
                        raise TransactionAborted(
                            txn.key, f"first-committer-wins conflict on {var!r}"
                        )
            self._commit_seq += 1
            for var in sorted(txn.buffer):
                self._versions[var].append((self._commit_seq, txn.key, txn.buffer[var]))
                self._drop_dirty(var, txn.key)
            txn.status = "committed"
            self.stats.commits += 1
            self._touch(txn)
            self._append({"type": "commit", "session": txn.session, "txn": txn.index})
            self._locks.release_all(txn.key)
            self._wake()

    def abort(self, txn: EngineTxn) -> None:
        """Voluntary abort (the program executed its abort instruction)."""
        with self._latch:
            self._check_pending(txn)
            self.stats.user_aborts += 1
            self._abort_locked(txn)

    # -- trace adaptation -------------------------------------------------------

    def to_trace(self, name: str = "engine", meta: Optional[Dict] = None) -> Trace:
        """Adapt the commit log into a v1 trace, ready for the checker."""
        full_meta = {
            "engine": self.config.name,
            "claimed": self.config.claimed,
            "bug": self.config.bug,
        }
        full_meta.update(meta or {})
        return Trace.from_records(
            self.log,
            variables=self.variables,
            initial=self.initial,
            name=name,
            meta=full_meta,
        )

    def concurrent(self, a: TxnKey, b: TxnKey) -> bool:
        """Whether the two transactions' operation spans overlapped."""
        sa, sb = self.spans.get(a), self.spans.get(b)
        if sa is None or sb is None:
            return False
        return sa[0] <= sb[1] and sb[0] <= sa[1]

    # -- internals --------------------------------------------------------------

    def _visible_version(self, txn: EngineTxn, var: str) -> Tuple[TxnKey, Hashable]:
        chain = self._versions[var]
        dirty = self._dirty.get(var)
        if self.config.dirty_writes and dirty:
            writer, value = dirty[-1]
            return writer, value
        if self.config.snapshot_reads:
            for seq, writer, value in reversed(chain):
                if seq <= txn.snapshot_seq:
                    return writer, value
            seq, writer, value = chain[0]
            return writer, value
        lag = self.config.replica_lag if var in self.lagged_keys else 0
        index = max(0, len(chain) - 1 - lag)
        seq, writer, value = chain[index]
        return writer, value

    def _acquire(self, txn: EngineTxn, var: str, mode: str) -> None:
        try:
            self._locks.acquire(txn.key, var, mode)
        except WouldBlock:
            self.stats.lock_waits += 1
            raise
        except TransactionAborted:
            self.stats.deadlock_aborts += 1
            self._abort_locked(txn)
            raise

    def _abort_locked(self, txn: EngineTxn) -> None:
        txn.status = "aborted"
        txn.buffer.clear()
        for var in list(self._dirty):
            self._drop_dirty(var, txn.key)
        self._touch(txn)
        self._append({"type": "abort", "session": txn.session, "txn": txn.index})
        self._locks.release_all(txn.key)
        self._wake()

    def _drop_dirty(self, var: str, txn_key: TxnKey) -> None:
        stack = self._dirty.get(var)
        if stack:
            stack[:] = [entry for entry in stack if entry[0] != txn_key]

    def _append(self, record: Dict) -> None:
        self.log.append(record)

    def _touch(self, txn: EngineTxn) -> None:
        self._tick += 1
        first, _ = self.spans.get(txn.key, (self._tick, self._tick))
        self.spans[txn.key] = (first, self._tick)

    def _wake(self) -> None:
        if self.scheduler is not None:
            self.scheduler.wake()

    def _check_pending(self, txn: EngineTxn) -> None:
        if txn.status != "pending":
            raise EngineError(f"operation on {txn.status} transaction {txn.key}")

    def _check_var(self, var: str) -> None:
        if var not in self._versions:
            raise EngineError(f"unknown variable {var!r}")
