"""Two-phase lock manager for the in-process MVCC engine.

The engine's concurrency control is built from per-key shared/exclusive
locks.  The manager is deliberately *non-blocking*: an acquisition that
cannot be granted raises :class:`WouldBlock` after recording the wait-for
edges, and the caller (the scheduler-driven worker loop in
:mod:`repro.engine.harness`) decides how to wait.  This keeps the lock
manager usable both under real free-running threads and under the
deterministic lockstep scheduler — blocking policy lives in one place,
the scheduler.

Deadlocks are detected on the wait-for graph at acquisition time: a
request that would close a cycle aborts the *requesting* transaction (the
"detector dies" policy of most real engines — the requester is always a
member of the cycle it just closed, so aborting it is sufficient and
deterministic).

Lock strictness is the caller's choice: the honest configurations hold
every lock to commit (strict two-phase locking); the seeded bug knobs
release early or skip acquisition entirely (see
:mod:`repro.engine.mvcc`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

#: A transaction is identified engine-side by ``(session, index)`` — the
#: same pair the trace format uses, so commit-log entries adapt directly.
TxnKey = Tuple[str, int]

#: Lock modes.
SHARED = "S"
EXCLUSIVE = "X"


class EngineError(RuntimeError):
    """Misuse of the engine API (unknown key, op on a finished txn, ...)."""


class TransactionAborted(Exception):
    """The engine aborted the transaction (deadlock victim, FCW loser).

    The abort is already recorded in the commit log when this propagates;
    the worker loop reacts by retrying the program transaction as a fresh
    engine transaction (new index in the same session).
    """

    def __init__(self, txn: TxnKey, reason: str):
        super().__init__(f"transaction {txn} aborted: {reason}")
        self.txn = txn
        self.reason = reason


class WouldBlock(Exception):
    """Internal control flow: the operation must wait for ``key``.

    Raised *before* any engine state changed, so the operation can simply
    be retried once the scheduler re-runs it.
    """

    def __init__(self, key: str, holders: FrozenSet[TxnKey]):
        super().__init__(f"would block on {key!r} held by {sorted(holders)}")
        self.key = key
        self.holders = holders


class LockManager:
    """Per-key S/X locks with wait-for-graph deadlock detection."""

    def __init__(self) -> None:
        #: key → {txn: mode} current holders (all SHARED, or one EXCLUSIVE).
        self._holders: Dict[str, Dict[TxnKey, str]] = {}
        #: txn → (key, blockers) — the wait edge of a txn whose last
        #: acquisition would have blocked.  Cleared on grant and release.
        self._waits: Dict[TxnKey, Tuple[str, FrozenSet[TxnKey]]] = {}

    # -- queries ---------------------------------------------------------------

    def holders(self, key: str) -> Dict[TxnKey, str]:
        """Current holders of ``key`` (txn → mode)."""
        return dict(self._holders.get(key, {}))

    def held_by(self, txn: TxnKey) -> List[str]:
        """Keys currently locked (in any mode) by ``txn``."""
        return [key for key, holders in self._holders.items() if txn in holders]

    # -- acquisition ----------------------------------------------------------

    def acquire(self, txn: TxnKey, key: str, mode: str) -> None:
        """Grant ``key`` to ``txn`` in ``mode``, or refuse.

        Re-entrant grants and lone-holder S→X upgrades succeed silently.
        A refused request records the wait-for edge and raises
        :class:`WouldBlock`; if that edge closes a cycle in the wait-for
        graph the request raises :class:`TransactionAborted` instead (the
        requester is the deadlock victim).
        """
        holders = self._holders.setdefault(key, {})
        held = holders.get(txn)
        if held == EXCLUSIVE or (held == SHARED and mode == SHARED):
            self._waits.pop(txn, None)
            return
        blockers = frozenset(
            t
            for t, m in holders.items()
            if t != txn and (mode == EXCLUSIVE or m == EXCLUSIVE)
        )
        if not blockers:
            holders[txn] = mode if held is None else EXCLUSIVE
            self._waits.pop(txn, None)
            return
        self._waits[txn] = (key, blockers)
        if self._closes_cycle(txn):
            del self._waits[txn]
            raise TransactionAborted(txn, f"deadlock waiting for {key!r}")
        raise WouldBlock(key, blockers)

    def _closes_cycle(self, start: TxnKey) -> bool:
        """Whether ``start`` is reachable from the transactions it waits on."""
        seen: Set[TxnKey] = set()
        frontier: List[TxnKey] = list(self._waits[start][1])
        while frontier:
            txn = frontier.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            wait = self._waits.get(txn)
            if wait is not None:
                frontier.extend(wait[1])
        return False

    # -- release ---------------------------------------------------------------

    def release(self, txn: TxnKey, key: str) -> None:
        """Release one key (the early-release bug path)."""
        holders = self._holders.get(key)
        if holders is not None:
            holders.pop(txn, None)

    def release_all(self, txn: TxnKey) -> List[str]:
        """Drop every lock and wait edge of ``txn``; returns the freed keys."""
        freed: List[str] = []
        for key, holders in self._holders.items():
            if holders.pop(txn, None) is not None:
                freed.append(key)
        self._waits.pop(txn, None)
        return freed
