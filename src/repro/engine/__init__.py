"""A real (if small) threaded MVCC engine for differential isolation testing.

This package is the *system under test* side of the repo: everything else
checks histories and traces; :mod:`repro.engine` produces them from an
actual multi-threaded storage engine with locks, snapshots, and seeded
bugs.  See ``docs/engine.md`` for the concurrency-control details and the
claimed-level table, and ``repro difftest --help`` for the CLI entry
point.
"""

from .harness import (
    BUG_DEMOS,
    ConfigReport,
    DifftestReport,
    EngineRun,
    RunVerdict,
    detected_level,
    hotkey_program,
    increment_program,
    run_difftest,
    run_program,
    workload_program,
)
from .locks import (
    EXCLUSIVE,
    SHARED,
    EngineError,
    LockManager,
    TransactionAborted,
    WouldBlock,
)
from .mvcc import (
    HONEST_CONFIGS,
    SEEDED_BUGS,
    EngineConfig,
    MVCCEngine,
    SeededBug,
    engine_configs,
    get_engine_config,
)
from .schedule import FreeScheduler, Scheduler, SchedulerStuck, SeededScheduler

__all__ = [
    "BUG_DEMOS",
    "ConfigReport",
    "DifftestReport",
    "EngineConfig",
    "EngineError",
    "EngineRun",
    "EXCLUSIVE",
    "FreeScheduler",
    "HONEST_CONFIGS",
    "LockManager",
    "MVCCEngine",
    "RunVerdict",
    "SEEDED_BUGS",
    "SHARED",
    "Scheduler",
    "SchedulerStuck",
    "SeededBug",
    "SeededScheduler",
    "TransactionAborted",
    "WouldBlock",
    "detected_level",
    "engine_configs",
    "get_engine_config",
    "hotkey_program",
    "increment_program",
    "run_difftest",
    "run_program",
    "workload_program",
]
