"""Differential-testing harness: programs → engine → trace → checker.

The harness closes the loop the ROADMAP calls "real storage engine in the
loop": it runs an ordinary :class:`~repro.lang.program.Program` — one OS
thread per session, each transaction interpreted by the same generator
the model checker uses (:func:`repro.semantics.executor._run`) — against
an :class:`~repro.engine.mvcc.MVCCEngine`, adapts the engine's commit log
into a v1 trace, replays that trace through
:class:`~repro.checking.online.OnlineChecker`, and compares the level the
engine *claims* against the strongest level the checker can *confirm*.

Engine-forced aborts (deadlock victims, first-committer-wins losers) are
retried as fresh transactions of the same session, exactly like a real
client; the trace therefore contains the aborted attempts too, which the
checker's abort semantics (§2.2.1) handle natively.

:func:`run_difftest` sweeps seeds of the deterministic lockstep scheduler
(:class:`~repro.engine.schedule.SeededScheduler`), so "config X lies on
workload W at seed k" is a reproducible regression, not a flaky race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import random
import threading

from ..apps.workloads import APPLICATIONS, client_program
from ..checking.online import DEFAULT_LEVELS, OnlineChecker, OnlineStep
from ..core.events import TxnId
from ..lang.expr import L
from ..lang.program import Program, ProgramBuilder
from ..semantics.executor import ReadOp, WriteOp, _run
from ..trace.format import Trace
from .locks import TransactionAborted, TxnKey
from .mvcc import EngineConfig, EngineStats, MVCCEngine, SEEDED_BUGS, engine_configs
from .schedule import FreeScheduler, Scheduler, SeededScheduler

#: How often an engine-aborted transaction is retried before giving up.
DEFAULT_MAX_RETRIES = 8


# ---------------------------------------------------------------------------
# running a program on the engine
# ---------------------------------------------------------------------------


@dataclass
class EngineRun:
    """One workload execution: the recorded trace plus engine forensics."""

    program: Program
    config: EngineConfig
    trace: Trace
    stats: EngineStats
    spans: Dict[TxnKey, Tuple[int, int]]
    seed: Optional[int]
    gave_up: List[Tuple[str, int]] = field(default_factory=list)

    def check(self, levels: Iterable[str] = DEFAULT_LEVELS) -> "RunVerdict":
        """Replay the trace through the online checker."""
        checker = OnlineChecker.from_trace(self.trace, levels=levels)
        checker.replay(self.trace)
        verdicts = checker.verdicts
        return RunVerdict(
            run=self,
            verdicts=verdicts,
            first_violations={
                name: checker.first_violation(name)
                for name, ok in verdicts.items()
                if not ok
            },
        )

    def concurrent(self, a: TxnId, b: TxnId) -> bool:
        """Whether two transactions' engine operation spans overlapped."""
        sa = self.spans.get((a.session, a.index))
        sb = self.spans.get((b.session, b.index))
        if sa is None or sb is None:
            return False
        return sa[0] <= sb[1] and sb[0] <= sa[1]


@dataclass
class RunVerdict:
    """Checker verdicts for one engine run."""

    run: EngineRun
    verdicts: Dict[str, bool]
    first_violations: Dict[str, Optional[OnlineStep]]

    @property
    def detected(self) -> Optional[str]:
        return detected_level(self.verdicts)

    @property
    def claim_holds(self) -> bool:
        return self.verdicts.get(self.run.config.claimed, False)


def detected_level(verdicts: Mapping[str, bool]) -> Optional[str]:
    """The strongest checked level whose downward closure all holds.

    On the classical chain (RC ⊆ RA ⊆ CC ⊆ SI ⊆ SER) this is the last
    rung reachable without stepping over a violation.  The registry's
    lattice is a partial order (PSI and PC are incomparable, BS-3 sits on
    its own branch), so in general a level only counts as detected if it
    holds *and* every strictly-weaker checked level holds too; among such
    levels the strongest wins.  ``None`` means not even the weakest
    checked level survived.
    """
    from ..isolation import get_level

    names = sorted(verdicts, key=lambda n: get_level(n).strength)
    detected: Optional[str] = None
    for name in names:
        if not verdicts[name]:
            continue
        level = get_level(name)
        weaker = [o for o in names if o != name and get_level(o).is_weaker_than(level)]
        if all(verdicts[o] for o in weaker):
            detected = name
    return detected


def run_program(
    program: Program,
    config: EngineConfig,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    name: Optional[str] = None,
) -> EngineRun:
    """Execute ``program`` on a fresh engine, one thread per session.

    With ``seed`` the deterministic lockstep scheduler drives the threads
    (same seed → byte-identical trace); with neither ``seed`` nor
    ``scheduler`` the threads free-run.
    """
    if scheduler is None:
        scheduler = SeededScheduler(seed) if seed is not None else FreeScheduler()
    engine = MVCCEngine(
        config,
        program.variables,
        initial=dict(program.initial_values),
        scheduler=scheduler,
        default_initial=program.initial_value,
    )
    scheduler.register(program.sessions)
    gave_up: List[Tuple[str, int]] = []
    errors: Dict[str, BaseException] = {}
    threads = [
        threading.Thread(
            target=_session_worker,
            args=(engine, scheduler, session, txns, max_retries, gave_up, errors),
            name=f"difftest-{session}",
            daemon=True,
        )
        for session, txns in program.sessions.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        if thread.is_alive():
            raise RuntimeError(f"worker {thread.name} did not finish (engine wedged?)")
    if errors:
        session, err = sorted(errors.items())[0]
        raise RuntimeError(f"worker for session {session!r} failed: {err!r}") from err
    trace = engine.to_trace(
        name=name or f"{program.name}@{config.name}",
        meta={"seed": seed, "program": program.name},
    )
    return EngineRun(
        program=program,
        config=config,
        trace=trace,
        stats=engine.stats,
        spans=dict(engine.spans),
        seed=seed,
        gave_up=gave_up,
    )


def _session_worker(
    engine: MVCCEngine,
    scheduler: Scheduler,
    session: str,
    txns: Sequence,
    max_retries: int,
    gave_up: List[Tuple[str, int]],
    errors: Dict[str, BaseException],
) -> None:
    try:
        for position, txn_decl in enumerate(txns):
            attempts = 0
            while True:
                try:
                    _run_transaction(engine, scheduler, session, txn_decl)
                    break
                except TransactionAborted:
                    attempts += 1
                    if attempts > max_retries:
                        gave_up.append((session, position))
                        break
    except BaseException as err:  # surfaced to run_program after join
        errors[session] = err
    finally:
        scheduler.finish(session)


def _run_transaction(engine: MVCCEngine, scheduler: Scheduler, session: str, txn_decl) -> None:
    """Drive one transaction body against the engine, op by op."""
    handle = scheduler.run_op(session, lambda: engine.begin(session))
    env: Dict[str, Hashable] = {}
    gen = _run(txn_decl.body, env)
    aborted = False
    try:
        op = next(gen)
        while True:
            if isinstance(op, ReadOp):
                var = op.var
                value = scheduler.run_op(session, lambda: engine.read(handle, var))
                op = gen.send(value)
            elif isinstance(op, WriteOp):
                var, val = op.var, op.value
                scheduler.run_op(session, lambda: engine.write(handle, var, val))
                op = gen.send(None)
            else:  # pragma: no cover - _run only yields reads and writes
                raise TypeError(f"unexpected operation {op!r}")
    except StopIteration as stop:
        aborted = bool(stop.value)
    if aborted:
        scheduler.run_op(session, lambda: engine.abort(handle))
    else:
        scheduler.run_op(session, lambda: engine.commit(handle))


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


def hotkey_program(
    sessions: int = 3, txns_per_session: int = 3, seed: int = 0
) -> Program:
    """A contended micro-workload over three keys.

    Each transaction is drawn (seeded) from a pattern mix designed to
    exercise every anomaly family: hot-key increments (lost updates),
    read-only audits (fractured/stale reads), x/y pair writers and readers
    in both orders (co-cycle shapes), and write-skew pairs.
    """
    rng = random.Random(seed)
    p = ProgramBuilder(f"hotkeys-{sessions}x{txns_per_session}", extra_variables=("h", "x", "y"))
    stamp = 0
    for s in range(sessions):
        sb = p.session(f"c{s}")
        for _ in range(txns_per_session):
            stamp += 1
            pattern = rng.choice(
                ["incr", "incr", "audit", "pair_write", "pair_read_xy", "pair_read_yx", "skew"]
            )
            t = sb.transaction(pattern)
            if pattern == "incr":
                t.read("a", "h")
                t.write("h", L("a") + 1)
            elif pattern == "audit":
                t.read("a", "h")
                t.read("b", "x")
                t.read("c", "y")
            elif pattern == "pair_write":
                t.write("x", stamp)
                t.write("y", stamp)
            elif pattern == "pair_read_xy":
                t.read("a", "x")
                t.read("b", "y")
            elif pattern == "pair_read_yx":
                t.read("b", "y")
                t.read("a", "x")
            else:  # skew
                var = rng.choice(["x", "y"])
                t.read("a", "x")
                t.read("b", "y")
                t.write(var, L("a") + L("b") + 1)
    return p.build()


def increment_program(sessions: int, txns_per_session: int) -> Program:
    """Pure hot-key increments: the classic lost-update stress workload."""
    p = ProgramBuilder(f"increments-{sessions}x{txns_per_session}")
    for s in range(sessions):
        sb = p.session(f"c{s}")
        for _ in range(txns_per_session):
            t = sb.transaction("incr")
            t.read("a", "h")
            t.write("h", L("a") + 1)
    return p.build()


def _demo_no_read_locks() -> Program:
    # Pure write skew: each txn writes a single key, so the only anomaly
    # any interleaving can produce violates exactly SER.
    p = ProgramBuilder("demo-write-skew")
    for mine, theirs in (("x", "y"), ("y", "x")):
        t = p.session(f"w{mine}").transaction("skew")
        t.read("a", mine)
        t.read("b", theirs)
        t.write(mine, L("a") + L("b") + 1)
    return p.build()


def _demo_first_committer_loses() -> Program:
    # Two concurrent increments of the same key: the only anomaly is a
    # lost update, which passes RC/RA/CC and violates exactly SI.
    return increment_program(sessions=2, txns_per_session=1)


def _demo_stale_snapshot() -> Program:
    # Session "acct" increments h, then audits it read-only; session "bg"
    # commits unrelated traffic so the commit counter (and therefore the
    # lagged snapshot horizon) moves between the two.  When the audit's
    # snapshot misses the session's own committed increment the so-edge
    # forces a co cycle: an RA violation while RC still holds.
    p = ProgramBuilder("demo-stale-snapshot")
    acct = p.session("acct")
    t = acct.transaction("incr")
    t.read("a", "h")
    t.write("h", L("a") + 1)
    audit = acct.transaction("audit")
    audit.read("b", "h")
    bg = p.session("bg")
    for _ in range(2):
        t = bg.transaction("noise")
        t.read("k0", "k")
        t.write("k", L("k0") + 1)
    return p.build()


def _demo_early_release() -> Program:
    # Mutual dirty reads: both writers commit, so the write-read cycle is
    # between committed transactions and every level (even RC) fails.
    p = ProgramBuilder("demo-dirty-read")
    for mine, theirs in (("x", "y"), ("y", "x")):
        t = p.session(f"w{mine}").transaction("dirty")
        t.write(mine, 1)
        t.read("a", theirs)
    return p.build()


def _demo_lagging_replica() -> Program:
    # Two writers update both keys; two readers scan them in opposite
    # orders.  With reads of x lagging one commit, the readers observe the
    # writers in contradictory orders — the textbook RC co-cycle.  The
    # leading z-reads just delay the readers so the writers usually finish
    # first.
    p = ProgramBuilder("demo-replica-lag", extra_variables=("z",))
    for i, w in enumerate(("w1", "w2")):
        t = p.session(w).transaction("pair")
        t.write("x", i + 1)
        t.write("y", i + 1)
    r1 = p.session("r1").transaction("scan-xy")
    r1.read("p", "z")
    r1.read("q", "z")
    r1.read("a", "x")
    r1.read("b", "y")
    r2 = p.session("r2").transaction("scan-yx")
    r2.read("p", "z")
    r2.read("q", "z")
    r2.read("b", "y")
    r2.read("a", "x")
    return p.build()


#: Per-bug demo workloads whose only reachable anomaly is the bug's
#: signature shape — this is what pins "detected at exactly level L".
BUG_DEMOS: Dict[str, Callable[[], Program]] = {
    "no_read_locks": _demo_no_read_locks,
    "first_committer_loses": _demo_first_committer_loses,
    "stale_snapshot": _demo_stale_snapshot,
    "early_release": _demo_early_release,
    "lagging_replica": _demo_lagging_replica,
}


def workload_program(
    workload: str, sessions: int = 2, txns_per_session: int = 2, seed: int = 0
) -> Program:
    """Resolve a workload name to a program.

    Accepts ``hotkeys``, ``increments``, ``demo:<bug>``, any application
    name from :data:`repro.apps.workloads.APPLICATIONS`, a generator preset
    (``gen-hotspot``, ...) or an inline ``gen:knob=value,...`` spec string.
    """
    if workload == "hotkeys":
        return hotkey_program(sessions, txns_per_session, seed)
    if workload == "increments":
        return increment_program(sessions, txns_per_session)
    if workload.startswith("demo:"):
        bug = workload[len("demo:"):]
        if bug not in BUG_DEMOS:
            raise KeyError(f"no demo workload for bug {bug!r} (have {sorted(BUG_DEMOS)})")
        return BUG_DEMOS[bug]()
    try:
        return client_program(
            workload, sessions=sessions, txns_per_session=txns_per_session, seed=seed
        )
    except KeyError:
        pass
    from ..apps.workloads import workload_names

    raise KeyError(
        f"unknown workload {workload!r}; try hotkeys, increments, demo:<bug>, "
        f"a gen:knob=value,... spec, or one of {workload_names()}"
    )


# ---------------------------------------------------------------------------
# the difftest sweep
# ---------------------------------------------------------------------------


@dataclass
class ConfigReport:
    """Claimed vs. detected level for one config across the whole sweep."""

    config: EngineConfig
    results: List[RunVerdict]

    @property
    def detected(self) -> Optional[str]:
        """The strongest level *every* run satisfied (the sweep's floor)."""
        floor: Optional[str] = "SER"
        for result in self.results:
            d = result.detected
            if d is None:
                return None
            if floor is None or _rank(d) < _rank(floor):
                floor = d
        return floor

    @property
    def honest(self) -> bool:
        """Whether every run upheld the claimed level."""
        return all(result.claim_holds for result in self.results)

    @property
    def violations(self) -> List[RunVerdict]:
        return [result for result in self.results if not result.claim_holds]


@dataclass
class DifftestReport:
    """The full sweep: config name → :class:`ConfigReport`."""

    configs: Dict[str, ConfigReport]

    @property
    def liars(self) -> List[str]:
        return [name for name, report in self.configs.items() if not report.honest]

    @property
    def ok(self) -> bool:
        return not self.liars

    def render(self) -> str:
        lines = [
            f"{'config':<38} {'claimed':<8} {'detected':<9} {'runs':<5} verdict",
            "-" * 78,
        ]
        for name in sorted(self.configs):
            report = self.configs[name]
            detected = report.detected or "none"
            verdict = "ok" if report.honest else "LYING"
            lines.append(
                f"{name:<38} {report.config.claimed:<8} {detected:<9} "
                f"{len(report.results):<5} {verdict}"
            )
            for result in report.violations[:1]:
                step = result.first_violations.get(result.run.config.claimed)
                where = (
                    f"event #{step.index} ({step.event.op} {step.event.var or ''} "
                    f"by {step.event.session}/{step.event.txn})".replace("  ", " ")
                    if step is not None
                    else "n/a"
                )
                lines.append(
                    f"    first {result.run.config.claimed} violation: "
                    f"{result.run.trace.header.name} seed={result.run.seed} {where}"
                )
        return "\n".join(lines)


def _rank(level: str) -> int:
    """Lattice strength rank — total over all registered levels, so the
    sweep's ``levels`` may include any registered name, not just the
    classical five."""
    from ..isolation import get_level

    return get_level(level).strength


def run_difftest(
    configs: Optional[Iterable[str]] = None,
    workloads: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = range(8),
    sessions: int = 2,
    txns_per_session: int = 2,
    max_retries: int = DEFAULT_MAX_RETRIES,
    levels: Iterable[str] = DEFAULT_LEVELS,
    on_run: Optional[Callable[[RunVerdict], None]] = None,
) -> DifftestReport:
    """Sweep configs × workloads × scheduler seeds; check every trace.

    ``configs`` defaults to every named config (honest and bugged);
    ``workloads`` defaults to the config's bug demo (bugged configs) plus
    ``hotkeys``.  ``on_run`` is invoked once per finished run — the CLI
    uses it to write trace files.
    """
    all_configs = engine_configs()
    if configs is None:
        chosen = list(all_configs.values())
    else:
        from .mvcc import get_engine_config

        chosen = [get_engine_config(name) for name in configs]
    seeds = list(seeds)
    reports: Dict[str, ConfigReport] = {}
    for config in chosen:
        if workloads is None:
            names = ["hotkeys"] + ([f"demo:{config.bug}"] if config.bug else [])
        else:
            names = list(workloads)
        results: List[RunVerdict] = []
        for workload in names:
            for seed in seeds:
                program = workload_program(workload, sessions, txns_per_session, seed)
                run = run_program(
                    program,
                    config,
                    seed=seed,
                    max_retries=max_retries,
                    name=f"{workload}@{config.name}#s{seed}",
                )
                result = run.check(levels=levels)
                results.append(result)
                if on_run is not None:
                    on_run(result)
        reports[config.name] = ConfigReport(config=config, results=results)
    return DifftestReport(configs=reports)
