"""Thread schedulers for the MVCC engine harness.

Every engine operation a worker thread performs goes through
``scheduler.run_op(worker, fn)``.  Two policies are provided:

* :class:`FreeScheduler` — real concurrency.  Threads run at OS speed and
  are serialized only by the engine latch; an operation that would block
  on a lock simply retries after a short condition wait.

* :class:`SeededScheduler` — deterministic lockstep.  All live workers
  park between operations; a seeded RNG picks which parked worker may
  perform exactly one engine operation.  Because the grant decision is
  only ever taken when *every* live worker is parked, the sequence of
  grants — and therefore the engine's commit log — is a pure function of
  ``(program, config, seed)``.  This is what makes the seeded engine bugs
  reproducible regression scenarios rather than flaky races.

Workers that fail to acquire a lock are marked *blocked* and excluded
from the lottery until the engine releases any lock (``wake``), which
keeps the lockstep from spinning on a doomed acquisition.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, Iterable, Optional, Set, TypeVar

from .locks import WouldBlock

T = TypeVar("T")


class SchedulerStuck(RuntimeError):
    """Every live worker is blocked and nothing can wake them (engine bug)."""


class Scheduler:
    """Interface shared by both scheduling policies."""

    def register(self, workers: Iterable[str]) -> None:
        """Declare the full worker set before any thread starts."""

    def run_op(self, worker: str, fn: Callable[[], T]) -> T:
        """Run one engine operation on behalf of ``worker``."""
        raise NotImplementedError

    def finish(self, worker: str) -> None:
        """The worker has no more operations; stop scheduling it."""

    def wake(self) -> None:
        """The engine released locks; blocked workers may retry."""


class FreeScheduler(Scheduler):
    """Real thread timing: retry blocked operations after a condition wait."""

    def __init__(self, retry_interval: float = 0.002):
        self._cond = threading.Condition()
        self._retry_interval = retry_interval

    def run_op(self, worker: str, fn: Callable[[], T]) -> T:
        while True:
            try:
                return fn()
            except WouldBlock:
                with self._cond:
                    self._cond.wait(timeout=self._retry_interval)

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()


class SeededScheduler(Scheduler):
    """Deterministic lockstep driven by a seeded RNG.

    Invariant: a grant is only decided when every live worker is parked,
    so each RNG draw sees the same candidate set on every run with the
    same seed — real threads, deterministic interleaving.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._live: Set[str] = set()
        self._parked: Set[str] = set()
        self._blocked: Dict[str, str] = {}  # worker → key it last blocked on
        self._turn: Optional[str] = None
        self.steps = 0

    def register(self, workers: Iterable[str]) -> None:
        self._live = set(workers)

    def run_op(self, worker: str, fn: Callable[[], T]) -> T:
        while True:
            self._await_turn(worker)
            blocked: Optional[WouldBlock] = None
            try:
                result = fn()
            except WouldBlock as wb:
                blocked = wb
            except BaseException:
                self._yield_turn(worker)
                raise
            self._yield_turn(worker, blocked_on=blocked.key if blocked else None)
            if blocked is None:
                return result

    def finish(self, worker: str) -> None:
        with self._cond:
            self._live.discard(worker)
            self._parked.discard(worker)
            self._blocked.pop(worker, None)
            self._maybe_grant()
            self._cond.notify_all()

    def wake(self) -> None:
        # Called from inside an op (the runner holds the turn): any lock
        # release might unblock a parked worker, so clear the marks.
        with self._cond:
            self._blocked.clear()

    # -- internals -------------------------------------------------------------

    def _await_turn(self, worker: str) -> None:
        with self._cond:
            self._parked.add(worker)
            self._maybe_grant()
            self._cond.wait_for(lambda: self._turn == worker)

    def _yield_turn(self, worker: str, blocked_on: Optional[str] = None) -> None:
        with self._cond:
            self._turn = None
            self._parked.discard(worker)
            if blocked_on is not None:
                self._blocked[worker] = blocked_on
            self._maybe_grant()
            self._cond.notify_all()

    def _maybe_grant(self) -> None:
        if self._turn is not None or not self._live:
            return
        if self._parked != self._live:
            return  # a worker is still running or in transit to park
        runnable = sorted(self._parked - set(self._blocked))
        if not runnable:
            raise SchedulerStuck(
                f"all live workers blocked: {dict(sorted(self._blocked.items()))}"
            )
        self._turn = self._rng.choice(runnable)
        self.steps += 1
        self._cond.notify_all()
